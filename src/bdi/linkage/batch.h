#ifndef BDI_LINKAGE_BATCH_H_
#define BDI_LINKAGE_BATCH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bdi/linkage/blocking.h"
#include "bdi/linkage/matcher.h"
#include "bdi/text/similarity.h"

namespace bdi::linkage {

/// Structure-of-arrays working set for one chunk of candidate pairs — the
/// matching stage's cache-conscious slab. A worker fills the lane arrays
/// for a tile of its chunk, runs the vectorized bound pass over every
/// lane, then compacts the survivors and feeds them to the full kernels
/// in lane order, so each pass streams through contiguous memory instead
/// of ping-ponging between bound state and kernel state per pair. Chunks
/// are processed in fixed-size tiles (see kSlabTileLanes in batch.cc) so
/// the lane arrays stay cache-resident between the passes no matter how
/// large the chunk is.
///
/// Ownership follows the SimilarityScratch rule (DESIGN.md): one slab per
/// worker, reused across chunks; every buffer is grow-only, so
/// steady-state chunks allocate nothing. A slab must never be shared
/// between concurrently running workers.
struct CandidateSlab {
  /// Lane arrays: record refs of the chunk's pairs, index-aligned.
  std::vector<RecordIdx> a;
  std::vector<RecordIdx> b;
  /// Per-lane feature slots: bound-pass output first, then (for the
  /// survivor prefix) the full features.
  std::vector<PairFeatures> features;
  /// Per-lane scorer bound from the bound pass.
  std::vector<double> bounds;
  /// Lane indices that survived the bound pass, in lane order.
  std::vector<uint32_t> survivors;
  /// Survivor scores, index-aligned with `survivors`.
  std::vector<double> survivor_scores;
  /// The one grow-only kernel scratch shared by every lane in the slab.
  text::SimilarityScratch scratch;
  /// Gather staging for schedule-ordered scoring (the progressive path):
  /// pairs copied into schedule order and their scores, before the caller
  /// scatters them back to original slots. Grow-only like every other
  /// buffer here.
  std::vector<CandidatePair> gather;
  std::vector<double> gather_scores;
};

/// Mutex-guarded checkout pool of CandidateSlabs shared by the workers of
/// one parallel matching run. Reusing a slab across chunks keeps its
/// scratch and memo warm (an allocation/perf concern only — slab reuse
/// cannot change results, pinned by the equivalence suites). Hold a slab
/// through a SlabPool::Lease for the duration of one chunk.
class SlabPool {
 public:
  /// RAII checkout: acquires a slab (reusing a returned one when
  /// available) on construction, returns it on destruction.
  class Lease {
   public:
    /// Checks a slab out of `pool`; the lease must not outlive it.
    explicit Lease(SlabPool& pool) : pool_(pool), slab_(pool.Acquire()) {}
    ~Lease() { pool_.Release(std::move(slab_)); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    /// The checked-out slab.
    CandidateSlab& operator*() const { return *slab_; }
    /// Member access on the checked-out slab.
    CandidateSlab* operator->() const { return slab_.get(); }

   private:
    SlabPool& pool_;
    std::unique_ptr<CandidateSlab> slab_;
  };

 private:
  std::unique_ptr<CandidateSlab> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return std::make_unique<CandidateSlab>();
    std::unique_ptr<CandidateSlab> slab = std::move(free_.back());
    free_.pop_back();
    return slab;
  }

  void Release(std::unique_ptr<CandidateSlab> slab) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(slab));
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<CandidateSlab>> free_;
};

/// Scores `n` candidate pairs through the slab batch path: fills `slab`'s
/// lanes from `pairs`, runs the vectorized bound pass (when
/// `use_prefilter`), then the full kernel stack over the survivors, and
/// writes one score per pair into `scores[0..n)` — the score upper bound
/// for prefilter-skipped pairs (below threshold by construction), the
/// true score for everything else. Bitwise identical to the per-pair
/// cascade in every slot, for every scorer: the batch path runs the same
/// kernels in the same per-pair operation order, only grouped into
/// passes. Returns the number of prefilter-skipped pairs.
size_t ScoreCandidateSlab(const FeatureExtractor& extractor,
                          const PairScorer& scorer,
                          const CandidatePair* pairs, size_t n,
                          bool use_prefilter, CandidateSlab& slab,
                          double* scores);

/// The slab bound pass alone: fills `bounds[0..n)` with the scorer's
/// cheap score upper bound for each pair, via the same tiled
/// ExtractBoundsBatch + ScoreUpperBoundBatch passes the full cascade
/// runs, without touching the full kernels. Each bound is bitwise the
/// value the cascade would compute for that pair; the progressive
/// scheduler (progressive.h) uses this to rank candidates before
/// spending its comparison budget.
void BoundCandidateSlab(const FeatureExtractor& extractor,
                        const PairScorer& scorer, const CandidatePair* pairs,
                        size_t n, CandidateSlab& slab, double* bounds);

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_BATCH_H_
