#ifndef BDI_LINKAGE_BATCH_H_
#define BDI_LINKAGE_BATCH_H_

#include <cstdint>
#include <vector>

#include "bdi/linkage/blocking.h"
#include "bdi/linkage/matcher.h"
#include "bdi/text/similarity.h"

namespace bdi::linkage {

/// Structure-of-arrays working set for one chunk of candidate pairs — the
/// matching stage's cache-conscious slab. A worker fills the lane arrays
/// for a tile of its chunk, runs the vectorized bound pass over every
/// lane, then compacts the survivors and feeds them to the full kernels
/// in lane order, so each pass streams through contiguous memory instead
/// of ping-ponging between bound state and kernel state per pair. Chunks
/// are processed in fixed-size tiles (see kSlabTileLanes in batch.cc) so
/// the lane arrays stay cache-resident between the passes no matter how
/// large the chunk is.
///
/// Ownership follows the SimilarityScratch rule (DESIGN.md): one slab per
/// worker, reused across chunks; every buffer is grow-only, so
/// steady-state chunks allocate nothing. A slab must never be shared
/// between concurrently running workers.
struct CandidateSlab {
  /// Lane arrays: record refs of the chunk's pairs, index-aligned.
  std::vector<RecordIdx> a;
  std::vector<RecordIdx> b;
  /// Per-lane feature slots: bound-pass output first, then (for the
  /// survivor prefix) the full features.
  std::vector<PairFeatures> features;
  /// Per-lane scorer bound from the bound pass.
  std::vector<double> bounds;
  /// Lane indices that survived the bound pass, in lane order.
  std::vector<uint32_t> survivors;
  /// Survivor scores, index-aligned with `survivors`.
  std::vector<double> survivor_scores;
  /// The one grow-only kernel scratch shared by every lane in the slab.
  text::SimilarityScratch scratch;
};

/// Scores `n` candidate pairs through the slab batch path: fills `slab`'s
/// lanes from `pairs`, runs the vectorized bound pass (when
/// `use_prefilter`), then the full kernel stack over the survivors, and
/// writes one score per pair into `scores[0..n)` — the score upper bound
/// for prefilter-skipped pairs (below threshold by construction), the
/// true score for everything else. Bitwise identical to the per-pair
/// cascade in every slot, for every scorer: the batch path runs the same
/// kernels in the same per-pair operation order, only grouped into
/// passes. Returns the number of prefilter-skipped pairs.
size_t ScoreCandidateSlab(const FeatureExtractor& extractor,
                          const PairScorer& scorer,
                          const CandidatePair* pairs, size_t n,
                          bool use_prefilter, CandidateSlab& slab,
                          double* scores);

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_BATCH_H_
