#include "bdi/linkage/matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bdi/common/executor.h"
#include "bdi/common/logging.h"
#include "bdi/common/metrics.h"
#include "bdi/common/string_util.h"
#include "bdi/text/similarity.h"
#include "bdi/text/tokenizer.h"

namespace bdi::linkage {

namespace {

metrics::Gauge& InternedTokensGauge() {
  static metrics::Gauge* gauge =
      metrics::Registry::Get().RegisterGauge("bdi.linkage.interner.tokens");
  return *gauge;
}

}  // namespace

FeatureExtractor::FeatureExtractor(const Dataset* dataset,
                                   const AttrRoles* roles,
                                   const schema::MediatedSchema* schema,
                                   const schema::ValueNormalizer* normalizer,
                                   size_t num_threads)
    : dataset_(dataset),
      roles_(roles),
      schema_(schema),
      normalizer_(normalizer),
      num_threads_(num_threads) {
  BDI_CHECK(dataset_ != nullptr);
  Prepare();
}

void FeatureExtractor::Prepare() {
  size_t old_size = cache_.size();
  size_t grown = dataset_->num_records() - old_size;
  // Per-record tokenization is independent; build the new suffix in
  // parallel, staged as strings.
  std::vector<StagedCache> staged(grown);
  ParallelFor(
      grown,
      [&](size_t i) {
        staged[i] = BuildStaged(static_cast<RecordIdx>(old_size + i));
      },
      num_threads_);
  // Intern serially in record order: ids come out deterministic and the
  // interner is immutable — hence lock-free — during the concurrent
  // Extract phase.
  cache_.resize(dataset_->num_records());
  for (size_t i = 0; i < grown; ++i) {
    RecordCache& cache = cache_[old_size + i];
    cache.name_tokens = text::InternTokenSet(interner_, staged[i].name_tokens);
    cache.name_words = text::InternTokens(interner_, staged[i].name_words);
    cache.id_tokens = text::InternTokenSet(interner_, staged[i].id_tokens);
    cache.ids_from_role = staged[i].ids_from_role;
    cache.aligned_values = std::move(staged[i].aligned_values);
    cache.aligned_numbers = std::move(staged[i].aligned_numbers);
  }
  // Bound signatures for tokens interned above: once per distinct token,
  // so the prefilter's per-pair work never touches the strings.
  for (text::TokenId id = static_cast<text::TokenId>(signatures_.size());
       id < interner_.size(); ++id) {
    signatures_.push_back(text::MakeTokenSignature(interner_.token(id)));
  }
  if (metrics::Enabled()) {
    InternedTokensGauge().Set(static_cast<int64_t>(interner_.size()));
  }
}

void FeatureExtractor::Rebuild() {
  cache_.clear();
  interner_ = text::TokenInterner();
  signatures_.clear();
  Prepare();
}

FeatureExtractor::StagedCache FeatureExtractor::BuildStaged(
    RecordIdx idx) const {
  const Record& record = dataset_->record(idx);
  StagedCache cache;
  std::string name_text;
  std::string id_text;
  bool have_roles = roles_ != nullptr;
  for (const Field& field : record.fields) {
    SourceAttr sa{record.source, field.attr};
    AttrRole role = have_roles ? roles_->RoleOf(sa) : AttrRole::kOther;
    if (role == AttrRole::kName) {
      name_text += field.value;
      name_text += ' ';
    } else if (role == AttrRole::kIdentifier) {
      id_text += field.value;
      id_text += ' ';
    } else {
      int key;
      std::string value;
      if (schema_ != nullptr) {
        key = schema_->ClusterOf(sa);
        if (key < 0) continue;
        value = normalizer_ != nullptr
                    ? normalizer_->Normalize(sa, field.value)
                    : ToLower(NormalizeWhitespace(field.value));
      } else {
        key = field.attr;
        value = ToLower(NormalizeWhitespace(field.value));
      }
      cache.aligned_values.emplace_back(key, std::move(value));
    }
  }
  if (name_text.empty()) {
    // No detected name field: fall back to the title-position field (pages
    // lead with the display name). Concatenating *all* fields here would
    // leak numeric spec fragments into the name and identifier evidence.
    if (!record.fields.empty()) {
      name_text = record.fields[0].value;
    }
  }
  // Monge-Elkan ran over the whitespace-normalized name text; tokenizing
  // that same string here keeps the word sequence (order and duplicates)
  // exactly what the per-pair tokenizer used to produce.
  cache.name_words = text::WordTokens(NormalizeWhitespace(name_text));
  cache.name_tokens = text::TokenSet(name_text);
  // Identifier evidence. When no identifier field was detected, mine the
  // record's text instead — but only letter+digit tokens of length >= 5:
  // pure digit runs (years, weights, prices) collide far too easily to be
  // decisive.
  if (id_text.empty()) {
    std::string all_text;
    for (const Field& field : record.fields) {
      all_text += field.value;
      all_text += ' ';
    }
    cache.id_tokens = text::IdentifierTokens(all_text, /*min_len=*/5,
                                             /*require_letter=*/true);
    cache.ids_from_role = false;
  } else {
    cache.id_tokens = text::IdentifierTokens(id_text, /*min_len=*/4);
    cache.ids_from_role = true;
  }
  std::sort(cache.aligned_values.begin(), cache.aligned_values.end());
  // Parse each aligned value once, after the sort so the numbers stay
  // parallel to the final value order. NaN marks "not numeric" —
  // NumericSimilarityValues maps it to the exact 0.0 the per-pair string
  // parse would have produced.
  cache.aligned_numbers.reserve(cache.aligned_values.size());
  for (const auto& [key, value] : cache.aligned_values) {
    double parsed = std::numeric_limits<double>::quiet_NaN();
    ParseLeadingDouble(value, &parsed, nullptr);
    cache.aligned_numbers.push_back(parsed);
  }
  return cache;
}

namespace {

/// Identifier overlap over the id-sorted interned sets: decisive when both
/// sides' identifiers come from detected identifier fields, weaker when
/// either side's were mined from free text (which can mention *other*
/// products' identifiers). Shared by the full extractor and the prefilter
/// (the merge is cheap enough to be part of the bounds, and sharing the
/// code keeps the two paths identical).
double IdExactFeature(const std::vector<text::TokenId>& a_ids, bool a_role,
                      const std::vector<text::TokenId>& b_ids, bool b_role) {
  size_t i = 0, j = 0;
  while (i < a_ids.size() && j < b_ids.size()) {
    if (a_ids[i] == b_ids[j]) {
      return a_role && b_role ? 1.0 : 0.7;
    }
    a_ids[i] < b_ids[j] ? ++i : ++j;
  }
  return 0.0;
}

}  // namespace

PairFeatures FeatureExtractor::Extract(RecordIdx a, RecordIdx b,
                                       text::SimilarityScratch& scratch)
    const {
  BDI_CHECK(static_cast<size_t>(a) < cache_.size() &&
            static_cast<size_t>(b) < cache_.size())
      << "FeatureExtractor::Prepare() not called after dataset growth";
  const RecordCache& ca = cache_[a];
  const RecordCache& cb = cache_[b];
  PairFeatures features;

  features.id_exact = IdExactFeature(ca.id_tokens, ca.ids_from_role,
                                     cb.id_tokens, cb.ids_from_role);

  features.name_jaccard =
      text::JaccardSimilarityIds(ca.name_tokens, cb.name_tokens);
  features.name_similarity = text::SymmetricMongeElkan(
      interner_, ca.name_words, cb.name_words, scratch);

  // Aligned value agreement over shared keys. Numeric closeness counts the
  // fraction of shared numeric attributes agreeing within a tight relative
  // tolerance — averaging a soft kernel instead would sit near 0.8 for two
  // *random* products (most numeric specs live in narrow ranges) and stop
  // discriminating.
  constexpr double kNumericExact = 0.98;  // within 2%: same value reformatted
  constexpr double kNumericClose = 0.95;  // within 5%
  size_t shared = 0, agree = 0, numeric_shared = 0, numeric_agree = 0;
  size_t i = 0, j = 0;
  while (i < ca.aligned_values.size() && j < cb.aligned_values.size()) {
    int ka = ca.aligned_values[i].first, kb = cb.aligned_values[j].first;
    if (ka == kb) {
      const std::string& va = ca.aligned_values[i].second;
      const std::string& vb = cb.aligned_values[j].second;
      ++shared;
      // Parsed once per record in Prepare; bitwise the same value
      // NumericSimilarity(va, vb) computes, without the per-pair parse.
      double ns = text::NumericSimilarityValues(ca.aligned_numbers[i],
                                                cb.aligned_numbers[j]);
      // Numbers that agree within round-off count as agreeing values.
      if (va == vb || ns >= kNumericExact) ++agree;
      if (ns > 0.0) {
        ++numeric_shared;
        if (ns >= kNumericClose) ++numeric_agree;
      }
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  features.value_agreement =
      shared == 0 ? 0.0
                  : static_cast<double>(agree) / static_cast<double>(shared);
  features.numeric_closeness =
      numeric_shared == 0 ? 0.0
                          : static_cast<double>(numeric_agree) /
                                static_cast<double>(numeric_shared);
  return features;
}

PairFeatures FeatureExtractor::ExtractBounds(RecordIdx a, RecordIdx b,
                                             text::SimilarityScratch& scratch)
    const {
  BDI_CHECK(static_cast<size_t>(a) < cache_.size() &&
            static_cast<size_t>(b) < cache_.size())
      << "FeatureExtractor::Prepare() not called after dataset growth";
  const RecordCache& ca = cache_[a];
  const RecordCache& cb = cache_[b];
  PairFeatures bounds;
  // Exact (and cheap): the same integer merges the full extractor runs.
  bounds.id_exact = IdExactFeature(ca.id_tokens, ca.ids_from_role,
                                   cb.id_tokens, cb.ids_from_role);
  bounds.name_jaccard =
      text::JaccardSimilarityIds(ca.name_tokens, cb.name_tokens);
  // Bounded: the Monge-Elkan matrix over signatures instead of strings.
  bounds.name_similarity = text::SymmetricMongeElkanUpperBound(
      signatures_, ca.name_words, cb.name_words, scratch);
  // The aligned-value features need no key merge for a bound: both are
  // fractions in [0, 1], and both are exactly 0 when either side has no
  // aligned values (no key can be shared).
  double value_bound =
      ca.aligned_values.empty() || cb.aligned_values.empty() ? 0.0 : 1.0;
  bounds.value_agreement = value_bound;
  bounds.numeric_closeness = value_bound;
  return bounds;
}

namespace {

/// Pulls the two record caches of lane `i` toward L1 while earlier lanes
/// compute. The caches are read-only here, so `_MM_HINT_T0`-style rw=0
/// prefetches are always safe; a no-op on targets without the builtin.
inline void PrefetchLane(const void* cache_a, const void* cache_b) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(cache_a, /*rw=*/0, /*locality=*/3);
  __builtin_prefetch(cache_b, /*rw=*/0, /*locality=*/3);
#else
  (void)cache_a;
  (void)cache_b;
#endif
}

/// How far ahead of the computing lane the prefetcher runs. One cache
/// pair is ~2 cache lines; 4 lanes of lookahead hides a main-memory miss
/// behind the preceding pairs' kernel work without thrashing L1.
constexpr size_t kPrefetchDistance = 4;

}  // namespace

void FeatureExtractor::ExtractBatch(const RecordIdx* a, const RecordIdx* b,
                                    size_t n, PairFeatures* out,
                                    text::SimilarityScratch& scratch) const {
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      PrefetchLane(&cache_[a[i + kPrefetchDistance]],
                   &cache_[b[i + kPrefetchDistance]]);
    }
    out[i] = Extract(a[i], b[i], scratch);
  }
}

void FeatureExtractor::ExtractBoundsBatch(
    const RecordIdx* a, const RecordIdx* b, size_t n, PairFeatures* out,
    text::SimilarityScratch& scratch) const {
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      PrefetchLane(&cache_[a[i + kPrefetchDistance]],
                   &cache_[b[i + kPrefetchDistance]]);
    }
    out[i] = ExtractBounds(a[i], b[i], scratch);
  }
}

LinearScorer::LinearScorer()
    : LinearScorer({0.35, 0.25, 0.15, 0.15, 0.10}) {}

LinearScorer::LinearScorer(std::array<double, PairFeatures::kCount> weights)
    : weights_(weights) {
  threshold_ = 0.5;
  for (double w : weights_) total_weight_ += w;
}

double LinearScorer::Score(const PairFeatures& features) const {
  std::array<double, PairFeatures::kCount> f = features.AsArray();
  double score = 0.0;
  for (size_t i = 0; i < f.size(); ++i) {
    score += weights_[i] * f[i];
  }
  return total_weight_ == 0.0 ? 0.0 : score / total_weight_;
}

double LinearScorer::ScoreUpperBound(const PairFeatures& bounds) const {
  // Negative weights (caller-supplied) can only pull a non-negative
  // feature's term below zero; dropping them keeps the bound sound. A
  // non-positive total weight has no meaningful normalization — decline
  // to bound rather than divide by it.
  if (total_weight_ <= 0.0) return 1.0;
  std::array<double, PairFeatures::kCount> f = bounds.AsArray();
  double score = 0.0;
  for (size_t i = 0; i < f.size(); ++i) {
    score += std::max(weights_[i], 0.0) * f[i];
  }
  return score / total_weight_;
}

RuleScorer::RuleScorer(double name_threshold, double value_threshold)
    : name_threshold_(name_threshold), value_threshold_(value_threshold) {
  threshold_ = 0.5;
}

double RuleScorer::Score(const PairFeatures& features) const {
  if (features.id_exact >= 1.0) return 1.0;
  // A mined (non-role) identifier match needs the names to agree too.
  if (features.id_exact >= 0.7 && features.name_similarity >= 0.7) {
    return 0.95;
  }
  // Corroboration is value agreement alone: numeric_closeness has too high
  // a coincidence baseline on narrow-range attributes to gate a match.
  double corroboration = features.value_agreement;
  if (features.name_similarity >= name_threshold_ &&
      corroboration >= value_threshold_) {
    return 0.5 + 0.5 * features.name_similarity * corroboration;
  }
  return 0.4 * features.name_similarity + 0.1 * corroboration;
}

double RuleScorer::ScoreUpperBound(const PairFeatures& bounds) const {
  // Max over the branches reachable under `bounds`. A branch's guard can
  // only be satisfied by some feature vector <= bounds when the bound
  // itself clears the guard (guards are lower-bound comparisons), and each
  // branch expression is monotone in the features, so evaluating it at the
  // bound over-approximates every reachable score.
  if (bounds.id_exact >= 1.0) return 1.0;
  double best = 0.4 * bounds.name_similarity + 0.1 * bounds.value_agreement;
  if (bounds.id_exact >= 0.7 && bounds.name_similarity >= 0.7) {
    best = std::max(best, 0.95);
  }
  if (bounds.name_similarity >= name_threshold_ &&
      bounds.value_agreement >= value_threshold_) {
    best = std::max(
        best, 0.5 + 0.5 * bounds.name_similarity * bounds.value_agreement);
  }
  return best;
}

LearnedScorer::LearnedScorer() { weights_.fill(0.0); }

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

void LearnedScorer::Train(const std::vector<PairFeatures>& features,
                          const std::vector<int>& labels, int epochs,
                          double learning_rate) {
  BDI_CHECK(features.size() == labels.size());
  if (features.empty()) return;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double lr = learning_rate / (1.0 + 0.1 * epoch);
    for (size_t n = 0; n < features.size(); ++n) {
      std::array<double, PairFeatures::kCount> x = features[n].AsArray();
      double z = bias_;
      for (size_t i = 0; i < x.size(); ++i) z += weights_[i] * x[i];
      double error = static_cast<double>(labels[n]) - Sigmoid(z);
      bias_ += lr * error;
      for (size_t i = 0; i < x.size(); ++i) {
        weights_[i] += lr * error * x[i];
      }
    }
  }
}

double LearnedScorer::Score(const PairFeatures& features) const {
  std::array<double, PairFeatures::kCount> x = features.AsArray();
  double z = bias_;
  for (size_t i = 0; i < x.size(); ++i) z += weights_[i] * x[i];
  return Sigmoid(z);
}

double LearnedScorer::ScoreUpperBound(const PairFeatures& bounds) const {
  // Sigmoid is monotone, so bounding the logit bounds the score; trained
  // weights may be negative, and those terms only lower the logit of a
  // non-negative feature, so the positive-weight part bounds it.
  std::array<double, PairFeatures::kCount> x = bounds.AsArray();
  double z = bias_;
  for (size_t i = 0; i < x.size(); ++i) z += std::max(weights_[i], 0.0) * x[i];
  return Sigmoid(z);
}

}  // namespace bdi::linkage
