#ifndef BDI_LINKAGE_LINKAGE_H_
#define BDI_LINKAGE_LINKAGE_H_

#include <memory>

#include "bdi/linkage/attr_roles.h"
#include "bdi/linkage/blocking.h"
#include "bdi/linkage/clustering.h"
#include "bdi/linkage/matcher.h"
#include "bdi/linkage/meta_blocking.h"
#include "bdi/schema/attribute_stats.h"

namespace bdi::linkage {

enum class BlockerKind {
  kToken,
  kIdentifier,
  kSortedNeighborhood,
  kCanopy,
  /// Union of identifier and token blocks (the default: identifiers give
  /// precision anchors, tokens give recall for records lacking ids).
  kTokenPlusIdentifier,
};

enum class ScorerKind { kLinear, kRule, kLearned };

struct LinkerConfig {
  BlockerKind blocker = BlockerKind::kTokenPlusIdentifier;
  bool use_meta_blocking = false;
  MetaBlockingConfig meta_blocking;
  ScorerKind scorer = ScorerKind::kRule;
  /// Match threshold, applied to every scorer kind via
  /// PairScorer::set_threshold() (the scorer's threshold() is
  /// authoritative during matching).
  double threshold = 0.5;
  ClusteringMethod clustering = ClusteringMethod::kConnectedComponents;
  /// Threads for the pairwise matching stage; 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Comparison cascade: bound each candidate's achievable score from the
  /// interned token evidence and skip the expensive kernels when the bound
  /// cannot clear the scorer's threshold. The match set (pairs and scores)
  /// is bitwise identical either way — the bounds are sound and a
  /// kPrefilterSlack margin absorbs floating-point grouping differences —
  /// so this stays on by default; the switch exists for the equivalence
  /// tests and for A/B benchmarking.
  bool use_prefilter = true;
  /// Batched matching: each worker fills a structure-of-arrays candidate
  /// slab for its chunk, runs the vectorized bound pass over every lane,
  /// then the full kernels over the compacted survivors
  /// (ScoreCandidateSlab in batch.h). Scores are bitwise identical to the
  /// per-pair loop for every scorer and thread count; off reinstates the
  /// per-pair reference path for the equivalence tests and A/B benches.
  bool use_batch = true;
  /// Progressive comparison budget (ScorePairsProgressive in
  /// progressive.h): 0 = unlimited, a value in (0, 1) = fraction of the
  /// full-kernel comparisons the unbudgeted run would make, >= 1 = an
  /// absolute comparison count. Any non-zero value routes matching
  /// through the bound-ranked scheduler, which compares the
  /// highest-bound candidates first and stops when the budget runs out —
  /// so the match set at a small budget is a subset of the match set at a
  /// larger one, and recall is anytime rather than all-or-nothing.
  double comparison_budget = 0.0;
  /// Wall-clock deadline for the pairwise matching stage, in milliseconds
  /// (0 = none). Any positive value routes matching through the
  /// progressive scheduler, which checks the deadline at every
  /// scheduling-round boundary and defers the remaining comparisons when
  /// it expires — the serving layer's per-batch latency bound. Composable
  /// with `comparison_budget`: whichever limit is hit first stops the
  /// run. Unlike a comparison budget, where the run stops depends on wall
  /// time, so deadline-stopped match sets are reproducible in *form*
  /// (a prefix of the deterministic schedule) but not in size.
  double budget_ms = 0.0;
  /// Forces the progressive scheduler even with an unlimited budget
  /// (comparison_budget == 0). With no budget the scheduler's match set
  /// is bitwise identical to the classic slab path — scheduling changes
  /// comparison order, never scores — which is exactly what the
  /// equivalence tests and bench gates pin with this switch.
  bool use_progressive = false;
};

struct LinkageResult {
  EntityClusters clusters;
  /// The scored pairs that cleared the scorer's threshold, in candidate
  /// order — the clustering input, kept for diagnostics and equivalence
  /// testing (serial and parallel runs must produce identical pairs and
  /// bit-identical scores).
  std::vector<ScoredPair> matches;
  size_t num_candidates = 0;
  size_t num_matches = 0;
  /// Candidates the prefilter rejected without running the full kernels
  /// (0 when the cascade is off or the scorer declines to bound).
  size_t num_prefiltered = 0;
  /// Full-kernel comparisons the progressive scheduler executed (0 when
  /// matching ran the classic path).
  size_t num_scheduled = 0;
  /// Prefilter survivors the progressive scheduler left uncompared
  /// because the comparison budget ran out (0 when unbudgeted).
  size_t num_deferred = 0;
  double blocking_seconds = 0.0;
  double matching_seconds = 0.0;
  double clustering_seconds = 0.0;
};

/// End-to-end record linkage: blocking (optionally restructured by
/// meta-blocking) -> parallel pairwise matching -> clustering.
///
/// The Linker detects attribute roles and builds its feature extractor from
/// corpus statistics; an aligned mediated schema plus value normalizer can
/// be supplied to strengthen the value-agreement evidence (the
/// linkage-before-alignment vs alignment-before-linkage interplay the
/// tutorial discusses).
class Linker {
 public:
  Linker(const Dataset* dataset, const LinkerConfig& config,
         const schema::MediatedSchema* schema = nullptr,
         const schema::ValueNormalizer* normalizer = nullptr);

  Linker(const Linker&) = delete;
  Linker& operator=(const Linker&) = delete;

  /// Replaces the configured scorer (e.g. with a trained LearnedScorer).
  void SetScorer(std::unique_ptr<PairScorer> scorer);

  /// Runs the full pipeline over the dataset.
  LinkageResult Run();

  const AttrRoles& roles() const { return roles_; }
  FeatureExtractor& extractor() { return extractor_; }
  const PairScorer& scorer() const { return *scorer_; }

  /// The candidate pairs produced by the last Run() (for diagnostics).
  const std::vector<CandidatePair>& last_candidates() const {
    return last_candidates_;
  }

 private:
  std::unique_ptr<Blocker> MakeBlocker() const;

  const Dataset* dataset_;
  LinkerConfig config_;
  schema::AttributeStatistics stats_;
  AttrRoles roles_;
  FeatureExtractor extractor_;
  std::unique_ptr<PairScorer> scorer_;
  std::vector<CandidatePair> last_candidates_;
};

}  // namespace bdi::linkage

#endif  // BDI_LINKAGE_LINKAGE_H_
