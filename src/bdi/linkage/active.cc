#include "bdi/linkage/active.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bdi/common/random.h"

namespace bdi::linkage {

namespace {

struct LabeledPool {
  std::vector<PairFeatures> features;
  std::vector<int> labels;
};

/// Trains on the pool with the minority class oversampled to roughly 1:1;
/// candidate pools are heavily match-poor and a plain fit collapses to the
/// all-negative model.
void TrainBalanced(const LabeledPool& pool, int epochs,
                   LearnedScorer* scorer, double learning_rate = 0.5) {
  size_t positives = 0;
  for (int label : pool.labels) positives += static_cast<size_t>(label);
  size_t negatives = pool.labels.size() - positives;
  std::vector<PairFeatures> features = pool.features;
  std::vector<int> labels = pool.labels;
  if (positives > 0 && negatives > 0) {
    size_t minority_label = positives < negatives ? 1 : 0;
    size_t minority = std::min(positives, negatives);
    size_t majority = std::max(positives, negatives);
    size_t copies = majority / minority;  // additional repetitions
    for (size_t copy = 1; copy < copies; ++copy) {
      for (size_t i = 0; i < pool.labels.size(); ++i) {
        if (static_cast<size_t>(pool.labels[i]) == minority_label) {
          features.push_back(pool.features[i]);
          labels.push_back(pool.labels[i]);
        }
      }
    }
  }
  // Warm start: keep the previous weights and continue SGD on the grown
  // pool (a fresh fit each round makes the label-efficiency curve jitter).
  scorer->Train(features, labels, epochs, learning_rate);
}

void QueryAndAdd(const FeatureExtractor& extractor,
                 const std::vector<CandidatePair>& candidates, size_t index,
                 const LabelOracle& oracle, text::SimilarityScratch& scratch,
                 LabeledPool* pool, ActiveLearningResult* result) {
  const CandidatePair& pair = candidates[index];
  pool->features.push_back(extractor.Extract(pair.a, pair.b, scratch));
  pool->labels.push_back(oracle(pair));
  result->queried.push_back(pair);
  ++result->labels_used;
}

}  // namespace

ActiveLearningResult TrainActively(
    const FeatureExtractor& extractor,
    const std::vector<CandidatePair>& candidates, const LabelOracle& oracle,
    const ActiveLearningConfig& config) {
  ActiveLearningResult result;
  if (candidates.empty()) return result;
  Rng rng(config.seed);
  LabeledPool pool;
  text::SimilarityScratch scratch;
  std::vector<bool> labeled(candidates.size(), false);

  // Seed round: half random pairs, half likely positives (top heuristic
  // similarity) so the first model sees both classes — candidate pools
  // are dominated by non-matches.
  size_t heuristic_seeds = config.seed_labels / 2;
  if (heuristic_seeds > 0) {
    std::vector<std::pair<double, size_t>> ranked;
    ranked.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      PairFeatures features =
          extractor.Extract(candidates[i].a, candidates[i].b, scratch);
      ranked.emplace_back(
          features.id_exact + features.name_similarity, i);
    }
    size_t take = std::min(heuristic_seeds, ranked.size());
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<long>(take),
                      ranked.end(), std::greater<>());
    for (size_t k = 0; k < take; ++k) {
      labeled[ranked[k].second] = true;
      QueryAndAdd(extractor, candidates, ranked[k].second, oracle,
                  scratch, &pool, &result);
    }
  }
  std::vector<size_t> permutation =
      rng.SampleWithoutReplacement(candidates.size(), candidates.size());
  for (size_t index : permutation) {
    if (pool.labels.size() >= config.seed_labels) break;
    if (labeled[index]) continue;
    labeled[index] = true;
    QueryAndAdd(extractor, candidates, index, oracle, scratch, &pool,
                &result);
  }
  TrainBalanced(pool, config.train_epochs, &result.scorer);

  for (size_t round = 0; round < config.rounds; ++round) {
    // Uncertainty sampling: the unlabeled pairs with score closest to the
    // decision boundary.
    std::vector<std::pair<double, size_t>> uncertainty;
    uncertainty.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (labeled[i]) continue;
      double score = result.scorer.Score(
          extractor.Extract(candidates[i].a, candidates[i].b, scratch));
      uncertainty.emplace_back(std::abs(score - 0.5), i);
    }
    if (uncertainty.empty()) break;
    size_t take = std::min(config.batch_size, uncertainty.size());
    std::partial_sort(uncertainty.begin(),
                      uncertainty.begin() + static_cast<long>(take),
                      uncertainty.end());
    for (size_t k = 0; k < take; ++k) {
      size_t index = uncertainty[k].second;
      labeled[index] = true;
      QueryAndAdd(extractor, candidates, index, oracle, scratch, &pool,
                &result);
    }
    // Later rounds refine with a gentler step so one boundary batch
    // cannot fling the weights.
    TrainBalanced(pool, config.train_epochs, &result.scorer, 0.15);
  }
  return result;
}

ActiveLearningResult TrainRandomly(
    const FeatureExtractor& extractor,
    const std::vector<CandidatePair>& candidates, const LabelOracle& oracle,
    const ActiveLearningConfig& config) {
  ActiveLearningResult result;
  if (candidates.empty()) return result;
  Rng rng(config.seed);
  LabeledPool pool;
  text::SimilarityScratch scratch;
  size_t budget = config.seed_labels + config.batch_size * config.rounds;
  for (size_t index :
       rng.SampleWithoutReplacement(candidates.size(), budget)) {
    QueryAndAdd(extractor, candidates, index, oracle, scratch, &pool,
                &result);
  }
  TrainBalanced(pool, config.train_epochs, &result.scorer);
  return result;
}

}  // namespace bdi::linkage
