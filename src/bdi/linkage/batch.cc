#include "bdi/linkage/batch.h"

#include <algorithm>

#include "bdi/common/cpu.h"
#include "bdi/common/metrics.h"

namespace bdi::linkage {

namespace {

metrics::Counter& SlabsCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.batch.slabs");
  return *counter;
}

metrics::Counter& LanesCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.batch.lanes");
  return *counter;
}

metrics::Counter& VectorPassCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.batch.vector_pass");
  return *counter;
}

// Shared with the per-pair cascade in linkage.cc: same names register the
// same instruments, so both paths feed one prefilter surface.

metrics::Counter& PrefilterEvaluatedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.prefilter.evaluated");
  return *counter;
}

metrics::Counter& PrefilterSkippedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.linkage.matching.prefilter.skipped");
  return *counter;
}

metrics::Histogram& PrefilterBoundGapHistogram() {
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.linkage.matching.prefilter.bound_gap",
          {0.05, 0.1, 0.2, 0.3, 0.5, 1.0});
  return *histogram;
}

/// Lanes per tile of the slab. A chunk can hold tens of thousands of
/// pairs; materializing its whole bound/feature arrays would spill the
/// cache between the bound pass and the survivor pass, so each tile is
/// processed end to end (gather, bounds, compact, full kernels, write)
/// before the next begins. At 1024 lanes the tile's working set —
/// features (40 KiB), bounds (8 KiB), refs (8 KiB) — stays resident in
/// L2 across all passes. Tiling only regroups the passes; every lane
/// still runs the same per-pair operations in the same order.
constexpr size_t kSlabTileLanes = 1024;

/// One tile of the slab: the three-pass cascade over `pairs[0..n)` with
/// `n <= kSlabTileLanes`. See ScoreCandidateSlab for the contract.
size_t ScoreSlabTile(const FeatureExtractor& extractor,
                     const PairScorer& scorer, const CandidatePair* pairs,
                     size_t n, bool use_prefilter, bool metrics_on,
                     CandidateSlab& slab, double* scores) {
  slab.a.resize(std::max(slab.a.size(), n));
  slab.b.resize(std::max(slab.b.size(), n));
  slab.features.resize(std::max(slab.features.size(), n));
  for (size_t i = 0; i < n; ++i) {
    slab.a[i] = pairs[i].a;
    slab.b[i] = pairs[i].b;
  }

  if (!use_prefilter) {
    extractor.ExtractBatch(slab.a.data(), slab.b.data(), n,
                           slab.features.data(), slab.scratch);
    scorer.ScoreBatch(slab.features.data(), n, scores);
    return 0;
  }

  // Pass 1: bounds for every lane. The signature reductions underneath
  // run the dispatched SSE2/AVX2 kernels; each lane's result is the exact
  // integer arithmetic the scalar path produces.
  slab.bounds.resize(std::max(slab.bounds.size(), n));
  extractor.ExtractBoundsBatch(slab.a.data(), slab.b.data(), n,
                               slab.features.data(), slab.scratch);
  scorer.ScoreUpperBoundBatch(slab.features.data(), n, slab.bounds.data());

  // Pass 2: the same skip rule as the per-pair cascade, lane by lane. A
  // skipped lane records its bound (below threshold by construction), so
  // the output slots match the per-pair path bit for bit.
  const double threshold = scorer.threshold();
  slab.survivors.clear();
  size_t skipped = 0;
  for (size_t i = 0; i < n; ++i) {
    if (slab.bounds[i] + kPrefilterSlack < threshold) {
      scores[i] = slab.bounds[i];
      ++skipped;
    } else {
      slab.survivors.push_back(static_cast<uint32_t>(i));
    }
  }

  // Pass 3: full kernels over the compacted survivor lanes. Survivor lane
  // indices are strictly increasing, so the forward in-place compaction
  // never overwrites a lane it still needs; the compacted arrays give the
  // kernels (and the prefetcher) a dense access order.
  size_t num_survivors = slab.survivors.size();
  if (num_survivors > 0) {
    for (size_t k = 0; k < num_survivors; ++k) {
      slab.a[k] = slab.a[slab.survivors[k]];
      slab.b[k] = slab.b[slab.survivors[k]];
    }
    extractor.ExtractBatch(slab.a.data(), slab.b.data(), num_survivors,
                           slab.features.data(), slab.scratch);
    slab.survivor_scores.resize(
        std::max(slab.survivor_scores.size(), num_survivors));
    scorer.ScoreBatch(slab.features.data(), num_survivors,
                      slab.survivor_scores.data());
    for (size_t k = 0; k < num_survivors; ++k) {
      scores[slab.survivors[k]] = slab.survivor_scores[k];
    }
    if (metrics_on) {
      for (size_t k = 0; k < num_survivors; ++k) {
        PrefilterBoundGapHistogram().Observe(
            slab.bounds[slab.survivors[k]] - slab.survivor_scores[k]);
      }
    }
  }
  return skipped;
}

}  // namespace

size_t ScoreCandidateSlab(const FeatureExtractor& extractor,
                          const PairScorer& scorer,
                          const CandidatePair* pairs, size_t n,
                          bool use_prefilter, CandidateSlab& slab,
                          double* scores) {
  const bool metrics_on = metrics::Enabled();
  if (metrics_on) {
    SlabsCounter().Add();
    LanesCounter().Add(n);
    if (use_prefilter &&
        cpu::ActiveSimdLevel() != cpu::SimdLevel::kScalar) {
      VectorPassCounter().Add(n);
    }
  }
  size_t skipped = 0;
  for (size_t base = 0; base < n; base += kSlabTileLanes) {
    size_t tile = std::min(kSlabTileLanes, n - base);
    skipped += ScoreSlabTile(extractor, scorer, pairs + base, tile,
                             use_prefilter, metrics_on, slab, scores + base);
  }
  if (metrics_on && use_prefilter) {
    PrefilterEvaluatedCounter().Add(n);
    PrefilterSkippedCounter().Add(skipped);
  }
  return skipped;
}

void BoundCandidateSlab(const FeatureExtractor& extractor,
                        const PairScorer& scorer, const CandidatePair* pairs,
                        size_t n, CandidateSlab& slab, double* bounds) {
  for (size_t base = 0; base < n; base += kSlabTileLanes) {
    size_t tile = std::min(kSlabTileLanes, n - base);
    slab.a.resize(std::max(slab.a.size(), tile));
    slab.b.resize(std::max(slab.b.size(), tile));
    slab.features.resize(std::max(slab.features.size(), tile));
    for (size_t i = 0; i < tile; ++i) {
      slab.a[i] = pairs[base + i].a;
      slab.b[i] = pairs[base + i].b;
    }
    extractor.ExtractBoundsBatch(slab.a.data(), slab.b.data(), tile,
                                 slab.features.data(), slab.scratch);
    scorer.ScoreUpperBoundBatch(slab.features.data(), tile, bounds + base);
  }
}

}  // namespace bdi::linkage
