#include "bdi/linkage/temporal.h"

#include <algorithm>
#include <cmath>

#include "bdi/common/executor.h"
#include "bdi/common/logging.h"

namespace bdi::linkage {

double TemporalThreshold(double base, double floor, double half_life,
                         double dt) {
  if (dt <= 0.0) return base;
  double relaxed_share = 1.0 - std::pow(0.5, dt / std::max(1e-9, half_life));
  return base - (base - floor) * relaxed_share;
}

TemporalLinkageResult LinkTemporal(const Dataset& dataset,
                                   const std::vector<double>& record_time,
                                   const TemporalLinkConfig& config) {
  BDI_CHECK(record_time.size() == dataset.num_records());
  TemporalLinkageResult result;

  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(dataset);
  AttrRoles roles = AttrRoles::Detect(stats);
  FeatureExtractor extractor(&dataset, &roles);

  // Blocking: identifier + token blocks; same-source pairs allowed so a
  // site's own page history can link across snapshots.
  std::vector<Block> blocks =
      IdentifierBlocker().MakeBlocksAll(dataset, &roles);
  std::vector<Block> token_blocks =
      TokenBlocker().MakeBlocksAll(dataset, &roles);
  blocks.insert(blocks.end(), std::make_move_iterator(token_blocks.begin()),
                std::make_move_iterator(token_blocks.end()));
  std::vector<CandidatePair> candidates =
      BlocksToPairs(dataset, blocks, config.allow_same_source);
  result.num_candidates = candidates.size();

  struct Verdict {
    bool match = false;
    bool relaxed = false;
    double score = 0.0;
  };
  // Chunked ranges with one caller-owned scratch per chunk (the
  // scratch-ownership convention): disjoint verdict slots keep the result
  // identical for every thread count.
  std::vector<Verdict> verdicts(candidates.size());
  ParallelForRanges(
      candidates.size(),
      [&](size_t chunk_begin, size_t chunk_end) {
        text::SimilarityScratch scratch;
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          const CandidatePair& pair = candidates[i];
          verdicts[i] = [&] {
            Verdict verdict;
            PairFeatures features =
                extractor.Extract(pair.a, pair.b, scratch);
            if (features.id_exact >= 1.0) {
              verdict.match = true;
              verdict.score = 1.0;
              return verdict;
            }
            double dt =
                std::abs(record_time[pair.a] - record_time[pair.b]);
            double corroboration = features.value_agreement;
            // Static path: full evidence at any gap.
            if (features.name_similarity >= config.base_threshold &&
                corroboration >= config.base_value_threshold) {
              verdict.match = true;
              verdict.score = features.name_similarity;
              return verdict;
            }
            // Relaxed path (disagreement decay): the name requirement
            // shrinks with the time gap, but only with *continuity
            // evidence* — the same site republishing (page history) or
            // strong value agreement — so the relaxation cannot glue
            // together merely similar strangers.
            bool same_source = dataset.record(pair.a).source ==
                               dataset.record(pair.b).source;
            double name_threshold = TemporalThreshold(
                config.base_threshold,
                same_source ? config.same_source_min_threshold
                            : config.min_threshold,
                config.drift_half_life, dt);
            // A relaxed name test must be backed by strong value
            // agreement in both regimes: the specification is what stays
            // stable through a rename.
            double required_corroboration =
                std::max(config.base_value_threshold, 0.6);
            if (features.name_similarity >= name_threshold &&
                corroboration >= required_corroboration) {
              verdict.match = true;
              verdict.score = features.name_similarity;
              verdict.relaxed = true;
            }
            return verdict;
          }();
        }
      },
      config.num_threads, /*min_chunk=*/64);

  std::vector<ScoredPair> matches;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!verdicts[i].match) continue;
    matches.push_back(ScoredPair{candidates[i], verdicts[i].score});
    if (verdicts[i].relaxed) ++result.relaxed_matches;
  }
  result.num_matches = matches.size();
  result.clusters =
      ClusterRecords(dataset.num_records(), matches,
                     ClusteringMethod::kConnectedComponents);
  return result;
}

}  // namespace bdi::linkage
