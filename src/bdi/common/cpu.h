#ifndef BDI_COMMON_CPU_H_
#define BDI_COMMON_CPU_H_

#include <atomic>

namespace bdi::cpu {

/// Instruction-set tiers the runtime-dispatched kernels can target, in
/// strictly increasing capability order (a level implies every lower
/// one). The integer values are the dispatch ordering — comparisons like
/// `level >= SimdLevel::kSse2` are part of the contract.
enum class SimdLevel {
  kScalar = 0,  ///< portable C++ only (also the BDI_DISABLE_SIMD build)
  kSse2 = 1,    ///< 128-bit integer lanes (baseline on x86-64)
  kAvx2 = 2,    ///< 256-bit integer lanes
};

namespace detail {

/// Storage behind ActiveSimdLevel(): the numeric level, or -1 before
/// first use. Private to bdi::cpu — exposed only so the hot-path read
/// inlines into kernel inner loops.
extern std::atomic<int> g_active_level;

/// One-time slow path: detects the hardware level, publishes it, and
/// returns it. Private to bdi::cpu.
int InitActiveLevel();

}  // namespace detail

/// Best level the running CPU supports. Constant for the process
/// lifetime; `kScalar` on non-x86 targets and in `BDI_DISABLE_SIMD`
/// builds regardless of hardware.
SimdLevel DetectedSimdLevel();

/// Level the dispatched kernels currently select. Defaults to
/// DetectedSimdLevel(); tests lower it to pin vector-vs-scalar
/// equivalence. Reading it is one relaxed atomic load plus a
/// predictable sentinel check — cheap enough for kernel inner loops,
/// and inline so callers pay no function-call overhead per cell.
inline SimdLevel ActiveSimdLevel() {
  int level = detail::g_active_level.load(std::memory_order_relaxed);
  if (level < 0) [[unlikely]] {
    level = detail::InitActiveLevel();
  }
  return static_cast<SimdLevel>(level);
}

/// Sets the active dispatch level, clamped to DetectedSimdLevel() (a
/// request the hardware cannot honor degrades, never crashes). Returns
/// the level actually applied. Every vector path is pinned
/// bitwise-identical to the scalar path, so flipping levels mid-run is
/// safe — it changes instruction selection, never results.
SimdLevel SetSimdLevel(SimdLevel level);

/// Human-readable level name ("scalar", "sse2", "avx2") for logs and
/// bench output.
const char* SimdLevelName(SimdLevel level);

}  // namespace bdi::cpu

#endif  // BDI_COMMON_CPU_H_
