#ifndef BDI_COMMON_THREAD_POOL_H_
#define BDI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace bdi {

/// Fixed-size worker pool. This is the execution substrate for the
/// `bdi::dataflow` MapReduce engine, substituting for a distributed cluster
/// at laptop scale (see DESIGN.md, substitutions).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains queued work, then joins the workers.
  ~ThreadPool();

  /// Enqueues `fn`; returns a future completing when it has run.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the workers, and blocks until all complete. Safe to call with n == 0.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Number of worker threads (fixed at construction).
  size_t num_threads() const { return threads_.size(); }

 private:
  /// Per-worker run loop: pops queued tasks until shutdown drains.
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace bdi

#endif  // BDI_COMMON_THREAD_POOL_H_
