#include "bdi/common/trace.h"

#include <map>
#include <mutex>
#include <utility>

namespace bdi::trace {

namespace {

struct SpanTotals {
  uint64_t calls = 0;
  double wall_seconds = 0.0;
  uint64_t items = 0;
};

struct SpanTable {
  std::mutex mu;
  std::map<std::string, SpanTotals> totals;
};

SpanTable& Table() {
  static SpanTable* table = new SpanTable();  // never destroyed
  return *table;
}

/// The active span path on this thread ("" at top level). Saved/restored
/// by StageSpan so nesting is per-thread and exception-free.
thread_local std::string tls_active_path;

}  // namespace

StageSpan::StageSpan(const char* name) {
  if (!metrics::Enabled()) return;
  active_ = true;
  if (tls_active_path.empty()) {
    path_ = name;
  } else {
    path_ = tls_active_path + "/" + name;
  }
  std::swap(tls_active_path, path_);  // path_ now holds the parent path
  start_ = std::chrono::steady_clock::now();
}

StageSpan::~StageSpan() {
  if (!active_) return;
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  // Restore the parent path; tls_active_path currently holds ours.
  std::swap(tls_active_path, path_);
  SpanTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mu);
  SpanTotals& totals = table.totals[path_];
  ++totals.calls;
  totals.wall_seconds += elapsed;
  totals.items += items_;
}

std::vector<metrics::SpanSample> SnapshotSpans() {
  SpanTable& table = Table();
  std::vector<metrics::SpanSample> samples;
  std::lock_guard<std::mutex> lock(table.mu);
  samples.reserve(table.totals.size());
  for (const auto& [path, totals] : table.totals) {
    samples.push_back(metrics::SpanSample{path, totals.calls,
                                          totals.wall_seconds,
                                          totals.items});
  }
  return samples;
}

void ResetSpans() {
  SpanTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mu);
  table.totals.clear();
}

}  // namespace bdi::trace
