#include "bdi/common/cpu.h"

namespace bdi::cpu {

namespace {

SimdLevel Detect() {
#if defined(BDI_DISABLE_SIMD)
  return SimdLevel::kScalar;
#elif defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

}  // namespace

namespace detail {

// -1 = not yet detected; constant-initialized so no static-order hazard.
constinit std::atomic<int> g_active_level{-1};

int InitActiveLevel() {
  int level = static_cast<int>(Detect());
  g_active_level.store(level, std::memory_order_relaxed);
  return level;
}

}  // namespace detail

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = Detect();
  return level;
}

SimdLevel SetSimdLevel(SimdLevel level) {
  SimdLevel clamped =
      static_cast<int>(level) <= static_cast<int>(DetectedSimdLevel())
          ? level
          : DetectedSimdLevel();
  detail::g_active_level.store(static_cast<int>(clamped),
                               std::memory_order_relaxed);
  return clamped;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace bdi::cpu
