#ifndef BDI_COMMON_POSIX_IO_H_
#define BDI_COMMON_POSIX_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "bdi/common/result.h"
#include "bdi/common/status.h"

/// EINTR-safe POSIX file-descriptor helpers shared by the serving layer
/// (socket request loops) and the write-ahead log (durable appends). Every
/// loop here retries interrupted syscalls and resumes short transfers, so a
/// signal or a small socket buffer can never truncate a frame mid-write;
/// every failure is a Status carrying errno context, never an abort.
namespace bdi::io {

/// Writes all of `data` to `fd`, retrying EINTR and continuing after short
/// writes until every byte is out. Returns IOError (with errno text) when
/// the descriptor fails; Unavailable for EPIPE/ECONNRESET, so callers can
/// tell "peer went away" from a genuine I/O fault.
Status WriteAllFd(int fd, std::string_view data);

/// Like WriteAllFd but for sockets: sends with MSG_NOSIGNAL so a
/// disconnected peer yields an EPIPE error instead of a process-killing
/// SIGPIPE. EPIPE and ECONNRESET map to Unavailable (per-connection close);
/// everything else to IOError.
Status SendAllFd(int fd, std::string_view data);

/// Reads up to `capacity` bytes from `fd` into `buffer`, retrying EINTR.
/// Returns the byte count (0 = end of stream) or IOError; ECONNRESET is
/// reported as 0 (the peer hung up — a close, not a fault).
Result<size_t> ReadSomeFd(int fd, char* buffer, size_t capacity);

/// fsync(fd), retrying EINTR. IOError on failure.
Status FsyncFd(int fd);

/// Opens `path` read-only, fsyncs it, and closes it — used to fsync a
/// directory so a rename or create is durable, and to fsync files written
/// through buffered APIs that already closed their handle.
Status FsyncPath(const std::string& path);

/// Fsyncs the directory containing `path` (everything before the last '/',
/// or "." when there is none), making renames/creates of `path` durable.
Status FsyncParentDir(const std::string& path);

/// Truncates the file at `path` to exactly `bytes` (used by WAL recovery to
/// drop a torn tail frame), then fsyncs it. IOError on failure.
Status TruncateFile(const std::string& path, uint64_t bytes);

/// Reads the whole file at `path` into a string. IOError when the file
/// cannot be opened or read.
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace bdi::io

#endif  // BDI_COMMON_POSIX_IO_H_
