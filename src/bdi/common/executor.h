#ifndef BDI_COMMON_EXECUTOR_H_
#define BDI_COMMON_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "bdi/common/thread_pool.h"

namespace bdi {

/// Process-wide execution substrate: one lazily-initialized shared
/// ThreadPool behind chunked, work-stealing parallel loops (see DESIGN.md,
/// "execution substrate"). Every parallel stage in the pipeline — dataflow
/// MapReduce/ParallelMap, pairwise matching, fusion EM loops, copy
/// detection, blocking — runs on this pool instead of constructing and
/// joining a private pool per call.
///
/// Scheduling: the iteration space [0, n) is split into chunks; the calling
/// thread and up to `max_parallelism - 1` pool workers claim chunks from a
/// shared atomic cursor (work stealing at chunk granularity), so uneven
/// per-item costs balance automatically. The first exception thrown by the
/// body is captured, remaining chunks are abandoned, and the exception
/// rethrows on the calling thread once the loop quiesces.
///
/// Nesting: a parallel loop entered from inside another parallel loop's
/// body runs inline and serially on the calling worker. This keeps nested
/// calls deadlock-free (workers never block on work only other workers can
/// run) at the cost of no extra parallelism below the top level.
class Executor {
 public:
  /// The shared executor, constructed on first use with
  /// `Configure()`-requested threads, else $BDI_NUM_THREADS, else
  /// hardware_concurrency (at least 1). Requests are clamped to
  /// hardware_concurrency: the pool runs CPU-bound kernels, and
  /// oversubscribing cores only adds context switches.
  static Executor& Get();

  /// Requests the worker count for the shared pool (clamped to
  /// hardware_concurrency at construction). Effective only before the
  /// pool's lazy construction; returns false (and changes nothing) once
  /// the pool exists. Intended for process entry points (benches, tools).
  static bool Configure(size_t num_threads);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Worker count of the shared pool (fixed after lazy construction).
  size_t num_threads() const { return pool_->num_threads(); }

  /// Runs fn(i) for i in [0, n), blocking until all complete.
  /// `max_parallelism` caps the worker count for this call: 0 means the
  /// full pool, 1 runs inline serially in index order (the deterministic
  /// reference path).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t max_parallelism = 0);

  /// Chunked variant: fn(begin, end) per claimed chunk, letting the body
  /// keep per-chunk state (local accumulators, scratch buffers). Chunks are
  /// at least `min_chunk` indices (except possibly the last). With
  /// `max_parallelism` == 1 the whole range arrives as one chunk.
  void ParallelForRanges(size_t n,
                         const std::function<void(size_t, size_t)>& fn,
                         size_t max_parallelism = 0, size_t min_chunk = 1);

 private:
  explicit Executor(size_t num_threads);

  std::unique_ptr<ThreadPool> pool_;
};

/// Convenience wrappers over Executor::Get(). A serial request
/// (`max_parallelism` == 1, or n < 2) short-circuits without touching —
/// or lazily constructing — the shared pool.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t max_parallelism = 0);
void ParallelForRanges(size_t n, const std::function<void(size_t, size_t)>& fn,
                       size_t max_parallelism = 0, size_t min_chunk = 1);

}  // namespace bdi

#endif  // BDI_COMMON_EXECUTOR_H_
