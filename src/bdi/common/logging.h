#ifndef BDI_COMMON_LOGGING_H_
#define BDI_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace bdi {

/// Severity of a log line, ordered so levels compare numerically.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kInfo. Thread-safe (atomic).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Emits one formatted line to stderr. Used by the BDI_LOG macro; do not call
/// directly.
void EmitLogMessage(LogLevel level, const char* file, int line,
                    const std::string& message);

/// Collects a streamed message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { EmitLogMessage(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Streaming log macro: BDI_LOG(kInfo) << "loaded " << n << " records";
#define BDI_LOG(level)                                                   \
  if (::bdi::LogLevel::level < ::bdi::GetLogLevel()) {                   \
  } else                                                                 \
    ::bdi::internal_logging::LogMessage(::bdi::LogLevel::level,          \
                                        __FILE__, __LINE__)              \
        .stream()

/// Fatal-if-false invariant check, enabled in all build types.
#define BDI_CHECK(cond)                                                  \
  if (cond) {                                                            \
  } else                                                                 \
    ::bdi::internal_logging::FatalMessage(__FILE__, __LINE__).stream()   \
        << "Check failed: " #cond " "

namespace internal_logging {

/// Like LogMessage but aborts the process after emitting.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line) : file_(file), line_(line) {}
  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;
  [[noreturn]] ~FatalMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace bdi

#endif  // BDI_COMMON_LOGGING_H_
