#ifndef BDI_COMMON_TRACE_H_
#define BDI_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bdi/common/metrics.h"

namespace bdi::trace {

/// RAII wall-clock span around one pipeline stage. Spans nest: a span
/// opened while another is active on the same thread records under the
/// "/"-joined path of its ancestors, so `StageSpan("pipeline")` enclosing
/// `StageSpan("linkage")` enclosing `StageSpan("blocking")` aggregates as
/// `pipeline/linkage/blocking`. On destruction the elapsed wall time, one
/// invocation and the AddItems() total are folded into the process-wide
/// span table (exported with the metrics snapshot; see
/// docs/OBSERVABILITY.md).
///
/// Construction while collection is disabled (metrics::Enabled() false)
/// is a no-op — no clock read, no allocation — so instrumented stages are
/// free in the default configuration. Spans opened on worker threads
/// (inside executor loop bodies) start a fresh path on that thread; the
/// per-thread nesting stack is thread_local, the aggregate table is
/// mutex-protected and shared.
class StageSpan {
 public:
  /// Opens a span named `name` (path segment; [a-z0-9._-] by convention).
  explicit StageSpan(const char* name);

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// Closes the span and folds it into the aggregate table.
  ~StageSpan();

  /// Attributes `n` processed items to this span (shown as `items` in the
  /// snapshot; used for records, candidate pairs, claims, ...).
  void AddItems(uint64_t n) { items_ += n; }

 private:
  bool active_ = false;
  uint64_t items_ = 0;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

/// Aggregated rows of the process-wide span table, sorted by path. Each
/// row carries the full nesting path, call count, total wall seconds and
/// total item count.
std::vector<metrics::SpanSample> SnapshotSpans();

/// Clears the span table (paired with metrics::Registry::Reset()).
void ResetSpans();

}  // namespace bdi::trace

#endif  // BDI_COMMON_TRACE_H_
