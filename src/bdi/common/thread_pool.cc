#include "bdi/common/thread_pool.h"

#include <algorithm>

#include "bdi/common/metrics.h"

namespace bdi {

namespace {

metrics::Counter& TasksCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.executor.tasks.submitted");
  return *counter;
}

metrics::Gauge& QueueDepthGauge() {
  static metrics::Gauge* gauge =
      metrics::Registry::Get().RegisterGauge("bdi.executor.queue.depth");
  return *gauge;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (metrics::Enabled()) {
      TasksCounter().Add();
      QueueDepthGauge().SetMax(static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, threads_.size());
  size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per_chunk;
    size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ must be true; drain is complete.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace bdi
