#ifndef BDI_COMMON_METRICS_H_
#define BDI_COMMON_METRICS_H_

/// Compile-time kill switch for the whole observability layer. Building
/// with -DBDI_METRICS_ENABLED=0 turns every instrument update and every
/// trace::StageSpan into a no-op the optimizer deletes outright.
#ifndef BDI_METRICS_ENABLED
#define BDI_METRICS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bdi/common/status.h"

namespace bdi::metrics {

namespace internal {
/// Runtime master switch backing Enabled(); off by default so library
/// users who never ask for metrics pay one relaxed atomic load per
/// instrument update. Do not touch directly — use SetEnabled().
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Turns the runtime collection switch on or off (process-wide). Entry
/// points that export a snapshot (bdi_cli --metrics-out, benches under
/// --json) enable it before running the pipeline; it is off by default.
void SetEnabled(bool on);

/// True when instruments are currently recording. Compile-time disabled
/// builds (BDI_METRICS_ENABLED == 0) always return false, which lets the
/// optimizer fold every instrument call away.
inline bool Enabled() {
#if BDI_METRICS_ENABLED
  return internal::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Monotonically increasing event count. Updates are lock-free relaxed
/// atomics; concurrent Add() calls from any number of threads sum exactly.
/// Obtain handles once via Registry::RegisterCounter (they live for the
/// process) and keep the pointer — the hot path is then one branch plus
/// one fetch_add.
class Counter {
 public:
  /// Adds `n` events (1 by default). No-op while collection is disabled.
  void Add(uint64_t n = 1) {
    if (Enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Current total since process start or the last Reset().
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Zeroes the counter (snapshot isolation for tests and CLI runs).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depth, pool size): set, adjust, read.
/// Like Counter, updates are relaxed atomics and gated on Enabled().
class Gauge {
 public:
  /// Overwrites the level. No-op while collection is disabled.
  void Set(int64_t v) {
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
  }

  /// Adjusts the level by `delta` (may be negative).
  void Add(int64_t delta) {
    if (Enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Records `v` only if it exceeds the current level (high-water marks).
  void SetMax(int64_t v) {
    if (!Enabled()) return;
    int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Current level.
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Resets the level to zero.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in
/// ascending order, plus an implicit overflow bucket, so an observation v
/// lands in the first bucket with v <= bound. Bucket counts, the running
/// sum and the observation count are all relaxed atomics — concurrent
/// Observe() calls lose nothing.
class Histogram {
 public:
  /// Records one observation. No-op while collection is disabled.
  void Observe(double v);

  /// The inclusive upper bounds this histogram was registered with.
  const std::vector<double>& bounds() const { return bounds_; }

  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Total observations across all buckets.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Sum of all observed values.
  double sum() const;

  /// Zeroes every bucket, the sum and the count.
  void Reset();

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  /// bounds_.size() + 1 buckets; the last is the overflow bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  /// Stored as bit-cast uint64_t so the sum accumulates with a CAS loop
  /// (portable double atomics without requiring lock-free fetch_add).
  std::atomic<uint64_t> sum_bits_{0};
};

/// One counter's name and value in a snapshot.
struct CounterSample {
  /// Registered name and the total at snapshot time.
  std::string name;
  uint64_t value = 0;
};

/// One gauge's name and level in a snapshot.
struct GaugeSample {
  /// Registered name and the level at snapshot time.
  std::string name;
  int64_t value = 0;
};

/// One histogram's full state in a snapshot.
struct HistogramSample {
  /// Registered name and the inclusive upper bounds it was created with.
  std::string name;
  std::vector<double> bounds;
  /// bounds.size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> counts;
  double sum = 0.0;
  uint64_t count = 0;
};

/// One aggregated trace span in a snapshot (see bdi/common/trace.h):
/// the "/"-joined nesting path, invocation count, total wall seconds and
/// total item count.
struct SpanSample {
  /// Full "/"-joined path, call count, total wall time and item total.
  std::string name;
  uint64_t calls = 0;
  double wall_seconds = 0.0;
  uint64_t items = 0;
};

/// A consistent, deterministic copy of every registered instrument plus
/// the aggregated stage spans, sorted by name. Two snapshots taken with no
/// intervening instrument updates serialize to identical JSON.
struct Snapshot {
  /// Each section sorted by instrument name.
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SpanSample> spans;
};

/// Process-wide instrument registry. Instrumented code pre-registers its
/// handles once (function-local static pointer idiom) and updates them
/// lock-free afterwards; registration itself takes a mutex and is expected
/// only on first use of an instrumented code path.
///
/// Names follow the scheme documented in docs/OBSERVABILITY.md:
/// `bdi.<module>.<subject>[.<qualifier>]`, characters [a-z0-9._] only, so
/// every name embeds verbatim into JSON without escaping.
class Registry {
 public:
  /// The process-wide registry (constructed on first use).
  static Registry& Get();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the counter named `name`, creating it on first call. Calling
  /// with a name already registered as a different instrument kind is an
  /// invariant violation (BDI_CHECK).
  Counter* RegisterCounter(const std::string& name);

  /// Returns the gauge named `name`, creating it on first call.
  Gauge* RegisterGauge(const std::string& name);

  /// Returns the histogram named `name`, creating it with the given
  /// inclusive upper `bounds` (ascending) on first call. Later calls
  /// ignore `bounds` and return the existing instrument.
  Histogram* RegisterHistogram(const std::string& name,
                               std::vector<double> bounds);

  /// A deterministic snapshot of all instruments and aggregated spans,
  /// sorted by name.
  Snapshot TakeSnapshot() const;

  /// The snapshot serialized as JSON (schema in docs/OBSERVABILITY.md).
  std::string ToJson() const;

  /// Writes ToJson() to `path`; IOError when the file cannot be written.
  Status WriteJsonFile(const std::string& path) const;

  /// Zeroes every instrument and the span table. Handles stay valid —
  /// this isolates successive runs (tests, CLI invocations), it does not
  /// unregister anything.
  void Reset();

 private:
  Registry();

  struct Impl;
  /// Heap-held so metrics.h stays light (no <map>/<mutex> in the header);
  /// never freed — the registry lives for the process.
  Impl* const impl_;
};

/// Serializes an arbitrary snapshot (not necessarily the live registry's)
/// as JSON — exposed for tests and for merging tooling.
std::string SnapshotToJson(const Snapshot& snapshot);

}  // namespace bdi::metrics

#endif  // BDI_COMMON_METRICS_H_
