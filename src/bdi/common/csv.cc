#include "bdi/common/csv.h"

#include <fstream>
#include <sstream>

namespace bdi {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string CharName(char c) {
  if (c == '\n') return "'\\n'";
  if (c == '\r') return "'\\r'";
  if (c == '\0') return "'\\0'";
  return std::string("'") + c + "'";
}

}  // namespace

std::string EncodeCsvRow(const std::vector<std::string>& fields) {
  // A row of one empty field would otherwise encode as an empty line,
  // which parses back as no row at all; "" is the unambiguous spelling.
  if (fields.size() == 1 && fields[0].empty()) return "\"\"";
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    if (NeedsQuoting(f)) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out.append(f);
    }
  }
  return out;
}

Result<std::vector<std::string>> ParseCsvRow(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool closed_quote = false;  // a quoted field ended; only , may follow
  size_t open_column = 0;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          closed_quote = true;
        }
      } else {
        current.push_back(c);
      }
    } else if (closed_quote && c != ',' && c != '\r') {
      return Status::InvalidArgument(
          "column " + std::to_string(i + 1) + ": unexpected " + CharName(c) +
          " after closing quote (expected ',' or end of row)");
    } else {
      if (c == '"' && current.empty()) {
        in_quotes = true;
        open_column = i + 1;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
        closed_quote = false;
      } else if (c == '\r') {
        // ignore stray carriage returns
      } else {
        current.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        "column " + std::to_string(open_column) +
        ": unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view content) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool closed_quote = false;
  bool row_quoted = false;  // any quote opened on this row ("" is a row)
  size_t line = 1;
  size_t open_line = 0;  // line on which the current quoted field opened
  size_t i = 0;
  auto end_row = [&]() {
    // A line with no characters at all is a blank line, not a row of one
    // empty field; "" spells the latter (see EncodeCsvRow).
    if (!fields.empty() || !current.empty() || row_quoted) {
      fields.push_back(std::move(current));
      rows.push_back(std::move(fields));
      fields.clear();
    }
    current.clear();
    closed_quote = false;
    row_quoted = false;
  };
  while (i < content.size()) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          closed_quote = true;
        }
      } else {
        if (c == '\n') ++line;
        current.push_back(c);
      }
    } else if (closed_quote && c != ',' && c != '\n' && c != '\r') {
      return Status::InvalidArgument(
          "line " + std::to_string(line) + ": unexpected " + CharName(c) +
          " after closing quote (expected ',' or end of row)");
    } else {
      if (c == '"' && current.empty()) {
        in_quotes = true;
        row_quoted = true;
        open_line = line;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
        closed_quote = false;
      } else if (c == '\n') {
        end_row();
        ++line;
      } else if (c == '\r') {
        // ignore stray carriage returns (CR-LF and lone CR alike)
      } else {
        current.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("line " + std::to_string(open_line) +
                                   ": unterminated quoted field");
  }
  end_row();
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for write: " + path);
  }
  for (const auto& row : rows) {
    out << EncodeCsvRow(row) << '\n';
  }
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

}  // namespace bdi
