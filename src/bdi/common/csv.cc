#include "bdi/common/csv.h"

#include <fstream>
#include <sstream>

namespace bdi {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

}  // namespace

std::string EncodeCsvRow(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    if (NeedsQuoting(f)) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out.append(f);
    }
  }
  return out;
}

Result<std::vector<std::string>> ParseCsvRow(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == '"' && current.empty()) {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
      } else if (c == '\r') {
        // ignore stray carriage returns
      } else {
        current.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view content) {
  std::vector<std::vector<std::string>> rows;
  size_t start = 0;
  while (start <= content.size()) {
    size_t pos = content.find('\n', start);
    std::string_view line = pos == std::string_view::npos
                                ? content.substr(start)
                                : content.substr(start, pos - start);
    if (!(line.empty() && pos == std::string_view::npos)) {
      if (!line.empty() || pos != std::string_view::npos) {
        BDI_ASSIGN_OR_RETURN(std::vector<std::string> row, ParseCsvRow(line));
        rows.push_back(std::move(row));
      }
    }
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  // Drop a trailing fully-empty row produced by a final newline.
  if (!rows.empty() && rows.back().size() == 1 && rows.back()[0].empty()) {
    rows.pop_back();
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for write: " + path);
  }
  for (const auto& row : rows) {
    out << EncodeCsvRow(row) << '\n';
  }
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

}  // namespace bdi
