#ifndef BDI_COMMON_CSV_H_
#define BDI_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/common/status.h"

namespace bdi {

/// Encodes one CSV row (RFC 4180 quoting: fields containing comma, quote or
/// newline are quoted, quotes doubled). No trailing newline.
std::string EncodeCsvRow(const std::vector<std::string>& fields);

/// Parses one CSV row. Fails on an unterminated quoted field.
Result<std::vector<std::string>> ParseCsvRow(std::string_view line);

/// Parses a whole CSV document (rows separated by '\n'; a final empty line
/// is ignored). Quoted fields may not contain newlines in this dialect.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view content);

/// Writes rows to `path`, one encoded row per line.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

/// Reads and parses a CSV file.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace bdi

#endif  // BDI_COMMON_CSV_H_
