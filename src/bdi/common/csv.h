#ifndef BDI_COMMON_CSV_H_
#define BDI_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/common/status.h"

namespace bdi {

/// Encodes one CSV row (RFC 4180 quoting: fields containing comma, quote or
/// newline are quoted, quotes doubled). A row of a single empty field is
/// spelled `""` so it stays distinguishable from a blank line. No trailing
/// newline.
std::string EncodeCsvRow(const std::vector<std::string>& fields);

/// Parses one CSV row. Fails (with a column position in the message) on an
/// unterminated quoted field or on data between a closing quote and the
/// next delimiter; never aborts on malformed input.
Result<std::vector<std::string>> ParseCsvRow(std::string_view line);

/// Parses a whole CSV document statefully: rows are separated by '\n'
/// (blank lines are skipped, CR in CR-LF endings is dropped), and quoted
/// fields may span newlines — everything EncodeCsvRow emits round-trips
/// bitwise. Malformed input (unterminated quote, garbage after a closing
/// quote) yields an InvalidArgument Status naming the offending line.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view content);

/// Writes rows to `path`, one encoded row per line.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

/// Reads and parses a CSV file.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace bdi

#endif  // BDI_COMMON_CSV_H_
