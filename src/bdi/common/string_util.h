#ifndef BDI_COMMON_STRING_UTIL_H_
#define BDI_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bdi {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any ASCII whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Prefix/suffix tests (C++20 starts_with/ends_with, kept for call sites).
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Collapses whitespace runs to single spaces and trims; the canonical form
/// used before comparing attribute names and values.
std::string NormalizeWhitespace(std::string_view s);

/// Lowercases and removes every non-alphanumeric character. This mirrors the
/// attribute-name normalization used in web-extraction corpora.
std::string NormalizeAlnum(std::string_view s);

/// True if every character is an ASCII digit (and s is non-empty).
bool IsDigits(std::string_view s);

/// Attempts to parse a double, tolerating surrounding whitespace and a
/// trailing unit suffix (e.g. "12.5 cm"). Returns false if no leading
/// numeric prefix exists. `*consumed_unit` receives the trimmed suffix.
bool ParseLeadingDouble(std::string_view s, double* value,
                        std::string* consumed_unit);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("12.50" -> "12.5", "3.00" -> "3").
std::string FormatDouble(double value, int digits);

}  // namespace bdi

#endif  // BDI_COMMON_STRING_UTIL_H_
