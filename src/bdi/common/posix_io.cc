#include "bdi/common/posix_io.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bdi::io {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Shared loop for write(2)-shaped calls: retry EINTR, resume short writes.
template <typename WriteFn>
Status WriteLoop(std::string_view data, const char* what, WriteFn write_fn) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = write_fn(data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable(ErrnoText(what));
      }
      return Status::IOError(ErrnoText(what));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteAllFd(int fd, std::string_view data) {
  return WriteLoop(data, "write", [fd](const char* p, size_t n) {
    return ::write(fd, p, n);
  });
}

Status SendAllFd(int fd, std::string_view data) {
  return WriteLoop(data, "send", [fd](const char* p, size_t n) {
    return ::send(fd, p, n, MSG_NOSIGNAL);
  });
}

Result<size_t> ReadSomeFd(int fd, char* buffer, size_t capacity) {
  while (true) {
    ssize_t n = ::read(fd, buffer, capacity);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return static_cast<size_t>(0);
    return Status::IOError(ErrnoText("read"));
  }
}

Status FsyncFd(int fd) {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return Status::IOError(ErrnoText("fsync"));
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoText(("open " + path).c_str()));
  Status synced = FsyncFd(fd);
  ::close(fd);
  return synced;
}

Status FsyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return FsyncPath(slash == std::string::npos ? "."
                                              : path.substr(0, slash));
}

Status TruncateFile(const std::string& path, uint64_t bytes) {
  while (::truncate(path.c_str(), static_cast<off_t>(bytes)) != 0) {
    if (errno != EINTR) {
      return Status::IOError(ErrnoText(("truncate " + path).c_str()));
    }
  }
  return FsyncPath(path);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoText(("open " + path).c_str()));
  std::string out;
  char chunk[1 << 16];
  while (true) {
    Result<size_t> n = ReadSomeFd(fd, chunk, sizeof(chunk));
    if (!n.ok()) {
      ::close(fd);
      return n.status();
    }
    if (*n == 0) break;
    out.append(chunk, *n);
  }
  ::close(fd);
  return out;
}

}  // namespace bdi::io
