#ifndef BDI_COMMON_FLAGS_H_
#define BDI_COMMON_FLAGS_H_

#include <map>
#include <string>

namespace bdi {

/// Minimal command-line flag parser for the tools: arguments are
/// "--name value" pairs or "--name=value" tokens, freely mixed. No
/// registration, no types — callers pull values with defaults. Parsing
/// failures record the offending token.
class Flags {
 public:
  /// Parses argv[first..argc). `argv` is borrowed, not retained.
  Flags(int argc, const char* const* argv, int first);

  /// False when any argument failed to parse; see bad_token().
  bool ok() const { return ok_; }
  /// The token that broke parsing (empty when ok()).
  const std::string& bad_token() const { return bad_; }

  /// Value of --name, or `fallback` when absent.
  std::string Get(const std::string& name,
                  const std::string& fallback) const;

  /// Integer value of --name; `fallback` when absent. Returns fallback and
  /// sets ok() to false on a malformed integer.
  int GetInt(const std::string& name, int fallback);

  /// True when --name was present (with any value, including empty).
  bool Has(const std::string& name) const;

  /// Number of distinct flags parsed.
  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string bad_;
};

}  // namespace bdi

#endif  // BDI_COMMON_FLAGS_H_
