#ifndef BDI_COMMON_FLAGS_H_
#define BDI_COMMON_FLAGS_H_

#include <map>
#include <string>

#include "bdi/common/result.h"
#include "bdi/common/status.h"

namespace bdi {

/// Minimal command-line flag parser for the tools: arguments are
/// "--name value" pairs or "--name=value" tokens, freely mixed. No
/// registration, no types — callers pull values with defaults. All parse
/// errors (bare tokens, missing values, empty names) are detected eagerly
/// in the constructor; the parsed state is immutable afterwards and every
/// getter is const.
class Flags {
 public:
  /// Parses argv[first..argc). `argv` is borrowed, not retained. A "--name"
  /// followed by another "--flag" token (or by nothing) is a missing-value
  /// error — use "--name=value" to pass a value that begins with "--".
  Flags(int argc, const char* const* argv, int first);

  /// False when any argument failed to parse; see bad_token() / error().
  bool ok() const { return ok_; }
  /// The token that broke parsing (empty when ok()).
  const std::string& bad_token() const { return bad_; }
  /// Human-readable description of the parse failure (empty when ok()).
  const std::string& error() const { return error_; }

  /// Value of --name, or `fallback` when absent.
  std::string Get(const std::string& name,
                  const std::string& fallback) const;

  /// Integer value of --name; `fallback` when absent. A malformed integer
  /// yields an InvalidArgument Status naming the flag.
  Result<int> GetInt(const std::string& name, int fallback) const;

  /// True when --name was present (with any value, including empty).
  bool Has(const std::string& name) const;

  /// Number of distinct flags parsed.
  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string bad_;
  std::string error_;
};

}  // namespace bdi

#endif  // BDI_COMMON_FLAGS_H_
