#ifndef BDI_COMMON_TABLE_H_
#define BDI_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace bdi {

/// Column-aligned ASCII table used by the benchmark harnesses to print the
/// paper-style result tables.
class TextTable {
 public:
  /// A table with the given column headers and no rows yet.
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Renders with a title, header rule and aligned columns.
  std::string ToString(const std::string& title = "") const;

  /// Prints ToString() to stdout.
  void Print(const std::string& title = "") const;

  /// Rows added so far (header excluded).
  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bdi

#endif  // BDI_COMMON_TABLE_H_
