#include "bdi/common/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "bdi/common/metrics.h"

namespace bdi {

namespace {

// Loop-scheduling instruments (see docs/OBSERVABILITY.md): parallel
// dispatches, chunks claimed in total, and chunks claimed by pool helpers
// rather than the calling thread (the "stolen" share).
metrics::Counter& LoopsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.executor.parallel_loops");
  return *counter;
}

metrics::Counter& ChunksCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.executor.chunks.claimed");
  return *counter;
}

metrics::Counter& StolenCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.executor.chunks.stolen");
  return *counter;
}

/// True while the current thread is executing a parallel-loop body; nested
/// loops then degrade to inline serial execution (see class comment).
thread_local bool tls_in_parallel_region = false;

std::atomic<size_t> g_requested_threads{0};
std::atomic<bool> g_pool_created{false};

size_t DefaultThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  size_t hardware = hc > 0 ? hc : 1;
  size_t requested = g_requested_threads.load();
  if (requested == 0) {
    if (const char* env = std::getenv("BDI_NUM_THREADS")) {
      long v = std::strtol(env, nullptr, 10);
      if (v > 0) requested = static_cast<size_t>(v);
    }
  }
  // Clamp to the hardware: every loop on this pool is CPU-bound, so
  // workers beyond the core count only add context switches (the seed's
  // 8-thread linkage bench was *slower* than serial on a 1-core box for
  // exactly this reason).
  if (requested > 0) return std::min(requested, hardware);
  return hardware;
}

void SerialRanges(size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n > 0) fn(0, n);
}

}  // namespace

Executor::Executor(size_t num_threads)
    : pool_(std::make_unique<ThreadPool>(num_threads)) {}

Executor& Executor::Get() {
  static Executor instance(DefaultThreads());
  g_pool_created.store(true);
  return instance;
}

bool Executor::Configure(size_t num_threads) {
  if (g_pool_created.load()) return false;
  g_requested_threads.store(num_threads);
  return true;
}

void Executor::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                           size_t max_parallelism) {
  ParallelForRanges(
      n,
      [&fn](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) fn(i);
      },
      max_parallelism);
}

void Executor::ParallelForRanges(size_t n,
                                 const std::function<void(size_t, size_t)>& fn,
                                 size_t max_parallelism, size_t min_chunk) {
  if (n == 0) return;
  size_t workers = pool_->num_threads();
  if (max_parallelism > 0) workers = std::min(workers, max_parallelism);
  if (workers <= 1 || n < 2 || tls_in_parallel_region) {
    SerialRanges(n, fn);
    return;
  }

  // Chunk small enough for load balance (several chunks per worker), large
  // enough to amortize the atomic claim.
  size_t chunk = std::max(min_chunk, n / (workers * 8));
  std::atomic<size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_exception;
  std::mutex exception_mu;

  if (metrics::Enabled()) LoopsCounter().Add();

  auto drain = [&](bool is_helper) {
    bool saved = tls_in_parallel_region;
    tls_in_parallel_region = true;
    size_t claimed = 0;
    while (!failed.load(std::memory_order_relaxed)) {
      size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      size_t end = std::min(n, begin + chunk);
      ++claimed;
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(exception_mu);
        if (!first_exception) first_exception = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    tls_in_parallel_region = saved;
    if (claimed > 0 && metrics::Enabled()) {
      ChunksCounter().Add(claimed);
      if (is_helper) StolenCounter().Add(claimed);
    }
  };

  // The calling thread participates; helpers join from the pool. If the
  // pool is saturated a helper may start late or find no chunks left —
  // correctness never depends on helpers arriving.
  size_t helpers = std::min(workers - 1, (n + chunk - 1) / chunk - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t h = 0; h < helpers; ++h) {
    futures.push_back(pool_->Submit([&drain] { drain(true); }));
  }
  drain(false);
  for (auto& f : futures) f.get();
  if (first_exception) std::rethrow_exception(first_exception);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t max_parallelism) {
  if (max_parallelism == 1 || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Executor::Get().ParallelFor(n, fn, max_parallelism);
}

void ParallelForRanges(size_t n, const std::function<void(size_t, size_t)>& fn,
                       size_t max_parallelism, size_t min_chunk) {
  if (max_parallelism == 1 || n < 2) {
    SerialRanges(n, fn);
    return;
  }
  Executor::Get().ParallelForRanges(n, fn, max_parallelism, min_chunk);
}

}  // namespace bdi
