#ifndef BDI_COMMON_TIMER_H_
#define BDI_COMMON_TIMER_H_

#include <chrono>

namespace bdi {

/// Monotonic wall-clock stopwatch for benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bdi

#endif  // BDI_COMMON_TIMER_H_
