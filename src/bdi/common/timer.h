#ifndef BDI_COMMON_TIMER_H_
#define BDI_COMMON_TIMER_H_

#include <chrono>

namespace bdi {

/// Monotonic wall-clock stopwatch for benchmark harnesses.
class WallTimer {
 public:
  /// Starts timing at construction.
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bdi

#endif  // BDI_COMMON_TIMER_H_
