#include "bdi/common/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bdi {

namespace {

bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) ++i;
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string NormalizeWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = false;
  for (char c : Trim(s)) {
    if (IsSpace(c)) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

std::string NormalizeAlnum(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) != 0) {
      out.push_back(static_cast<char>(std::tolower(uc)));
    }
  }
  return out;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

bool ParseLeadingDouble(std::string_view s, double* value,
                        std::string* consumed_unit) {
  std::string_view trimmed = Trim(s);
  if (trimmed.empty()) return false;
  std::string buf(trimmed);
  const char* begin = buf.c_str();
  char* end = nullptr;
  double parsed = std::strtod(begin, &end);
  if (end == begin) return false;
  *value = parsed;
  if (consumed_unit != nullptr) {
    *consumed_unit = std::string(Trim(std::string_view(end)));
  }
  return true;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace bdi
