#ifndef BDI_COMMON_RANDOM_H_
#define BDI_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace bdi {

/// Deterministic pseudo-random source used by the synthetic-data generator
/// and the randomized algorithms. All experiments seed their Rng explicitly
/// so results are reproducible run-to-run.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal draw sequences.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires a non-empty vector with non-negative entries summing > 0.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k clamped to n), in random
  /// order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// The underlying engine, for std::distribution interop.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Draws ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
/// Used to model head/tail skew of entity popularity and source size,
/// the central distributional assumption of the big-data-integration
/// workloads (head entities appear in many sources; most sources are tail).
class ZipfDistribution {
 public:
  /// Requires n >= 1 and s >= 0 (s == 0 degenerates to uniform).
  ZipfDistribution(size_t n, double s);

  /// Draws one rank in [0, n) from the distribution.
  size_t Sample(Rng* rng) const;

  /// P(rank) for diagnostics and tests.
  double Probability(size_t rank) const;

  /// Number of ranks the distribution was built over.
  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1.
};

}  // namespace bdi

#endif  // BDI_COMMON_RANDOM_H_
