#ifndef BDI_COMMON_STATUS_H_
#define BDI_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace bdi {

/// Error categories used throughout the library. The set is intentionally
/// small (Arrow/RocksDB idiom): callers branch on coarse categories and read
/// the message for detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIOError = 8,
  kUnavailable = 9,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Value-type result of an operation that can fail. The library does not
/// throw exceptions; fallible functions return `Status` (or `Result<T>`).
///
/// A default-constructed `Status` is OK. Statuses are cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define BDI_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::bdi::Status bdi_status_macro_s = (expr);   \
    if (!bdi_status_macro_s.ok()) {              \
      return bdi_status_macro_s;                 \
    }                                            \
  } while (false)

}  // namespace bdi

#endif  // BDI_COMMON_STATUS_H_
