#include "bdi/common/table.h"

#include <algorithm>
#include <cstdio>

#include "bdi/common/string_util.h"

namespace bdi {

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), header_.size()));
  rows_.push_back(std::move(cells));
}

void TextTable::AddRow(const std::string& label,
                       const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(FormatDouble(v, precision));
  }
  AddRow(std::move(cells));
}

std::string TextTable::ToString(const std::string& title) const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      line += cell;
      if (i + 1 < cols) {
        line.append(widths[i] - cell.size() + 2, ' ');
      }
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };

  std::string out;
  if (!title.empty()) {
    out += "== " + title + " ==\n";
  }
  out += render_row(header_);
  size_t rule = 0;
  for (size_t i = 0; i < cols; ++i) rule += widths[i] + (i + 1 < cols ? 2 : 0);
  out.append(rule, '-');
  out.push_back('\n');
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void TextTable::Print(const std::string& title) const {
  std::fputs(ToString(title).c_str(), stdout);
  std::fputc('\n', stdout);
}

}  // namespace bdi
