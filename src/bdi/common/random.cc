#include "bdi/common/random.h"

#include <algorithm>
#include <cmath>

#include "bdi/common/logging.h"

namespace bdi {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BDI_CHECK(lo <= hi) << "UniformInt: lo=" << lo << " hi=" << hi;
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return UniformDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  BDI_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    BDI_CHECK(w >= 0.0) << "negative categorical weight " << w;
    total += w;
  }
  BDI_CHECK(total > 0.0) << "categorical weights sum to zero";
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) {
      return i;
    }
  }
  return weights.size() - 1;  // numeric edge: target == total
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  k = std::min(k, n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  BDI_CHECK(n >= 1) << "ZipfDistribution requires n >= 1";
  BDI_CHECK(s >= 0.0) << "ZipfDistribution requires s >= 0";
  cdf_.resize(n);
  double total = 0.0;
  for (size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[rank] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Probability(size_t rank) const {
  BDI_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace bdi
