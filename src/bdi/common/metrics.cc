#include "bdi/common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>

#include "bdi/common/logging.h"
#include "bdi/common/trace.h"

namespace bdi::metrics {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  BDI_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double v) {
  if (!Enabled()) return;
  // First bucket whose inclusive upper bound admits v; else overflow.
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  double next;
  uint64_t next_bits;
  do {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    next = current + v;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
  } while (!sum_bits_.compare_exchange_weak(observed, next_bits,
                                            std::memory_order_relaxed));
}

double Histogram::sum() const {
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  bool NameTaken(const std::string& name) const {
    return counters.count(name) + gauges.count(name) +
               histograms.count(name) >
           0;
  }
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::Get() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter* Registry::RegisterCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return it->second.get();
  BDI_CHECK(!impl_->NameTaken(name))
      << "metric '" << name << "' already registered with another kind";
  return impl_->counters.emplace(name, std::make_unique<Counter>())
      .first->second.get();
}

Gauge* Registry::RegisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end()) return it->second.get();
  BDI_CHECK(!impl_->NameTaken(name))
      << "metric '" << name << "' already registered with another kind";
  return impl_->gauges.emplace(name, std::make_unique<Gauge>())
      .first->second.get();
}

Histogram* Registry::RegisterHistogram(const std::string& name,
                                       std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) return it->second.get();
  BDI_CHECK(!impl_->NameTaken(name))
      << "metric '" << name << "' already registered with another kind";
  auto histogram =
      std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
  return impl_->histograms.emplace(name, std::move(histogram))
      .first->second.get();
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& [name, counter] : impl_->counters) {
      snapshot.counters.push_back(CounterSample{name, counter->value()});
    }
    for (const auto& [name, gauge] : impl_->gauges) {
      snapshot.gauges.push_back(GaugeSample{name, gauge->value()});
    }
    for (const auto& [name, histogram] : impl_->histograms) {
      HistogramSample sample;
      sample.name = name;
      sample.bounds = histogram->bounds();
      sample.counts.reserve(sample.bounds.size() + 1);
      for (size_t i = 0; i <= sample.bounds.size(); ++i) {
        sample.counts.push_back(histogram->bucket_count(i));
      }
      sample.sum = histogram->sum();
      sample.count = histogram->count();
      snapshot.histograms.push_back(std::move(sample));
    }
  }
  snapshot.spans = trace::SnapshotSpans();
  return snapshot;
}

namespace {

/// Shortest round-trippable-enough representation: %.6g keeps snapshots
/// compact and deterministic across runs of the same build.
void AppendDouble(std::ostringstream& out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  out << buffer;
}

}  // namespace

std::string SnapshotToJson(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"counters\": [";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out << (i ? "," : "") << "\n    {\"name\": \"" << c.name
        << "\", \"value\": " << c.value << "}";
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "],\n  \"gauges\": [";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out << (i ? "," : "") << "\n    {\"name\": \"" << g.name
        << "\", \"value\": " << g.value << "}";
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ")
      << "],\n  \"histograms\": [";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out << (i ? "," : "") << "\n    {\"name\": \"" << h.name
        << "\", \"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b) out << ", ";
      AppendDouble(out, h.bounds[b]);
    }
    out << "], \"counts\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b) out << ", ";
      out << h.counts[b];
    }
    out << "], \"sum\": ";
    AppendDouble(out, h.sum);
    out << ", \"count\": " << h.count << "}";
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ")
      << "],\n  \"spans\": [";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanSample& s = snapshot.spans[i];
    out << (i ? "," : "") << "\n    {\"name\": \"" << s.name
        << "\", \"calls\": " << s.calls << ", \"wall_seconds\": ";
    AppendDouble(out, s.wall_seconds);
    out << ", \"items\": " << s.items << "}";
  }
  out << (snapshot.spans.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

std::string Registry::ToJson() const { return SnapshotToJson(TakeSnapshot()); }

Status Registry::WriteJsonFile(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics output file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    return Status::IOError("short write to metrics output file: " + path);
  }
  return Status::OK();
}

void Registry::Reset() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (auto& [name, counter] : impl_->counters) counter->Reset();
    for (auto& [name, gauge] : impl_->gauges) gauge->Reset();
    for (auto& [name, histogram] : impl_->histograms) histogram->Reset();
  }
  trace::ResetSpans();
}

}  // namespace bdi::metrics
