#ifndef BDI_COMMON_HASH_H_
#define BDI_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bdi {

/// 64-bit FNV-1a, stable across platforms; used for shuffle partitioning so
/// runs are reproducible regardless of the standard library's std::hash.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over the 8 little-endian bytes of `value`.
inline uint64_t Fnv1a64(uint64_t value) {
  uint64_t h = 1469598103934665603ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= value & 0xffu;
    h *= 1099511628211ULL;
    value >>= 8;
  }
  return h;
}

/// boost::hash_combine-style mixing.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace bdi

#endif  // BDI_COMMON_HASH_H_
