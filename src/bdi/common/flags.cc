#include "bdi/common/flags.h"

#include <charconv>
#include <cstring>

namespace bdi {

Flags::Flags(int argc, const char* const* argv, int first) {
  auto fail = [this](const char* token, std::string message) {
    ok_ = false;
    bad_ = token;
    error_ = std::move(message);
  };
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0 || argv[i][2] == '\0') {
      fail(argv[i], std::string("expected a --flag, got '") + argv[i] + "'");
      return;
    }
    const char* name = argv[i] + 2;
    if (const char* eq = std::strchr(name, '=')) {
      if (eq == name) {
        fail(argv[i], std::string("empty flag name in '") + argv[i] + "'");
        return;
      }
      values_[std::string(name, eq)] = eq + 1;
      continue;
    }
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      fail(argv[i], std::string("missing value for '") + argv[i] +
                        "' (use " + argv[i] +
                        "=value for values beginning with --)");
      return;
    }
    values_[name] = argv[i + 1];
    ++i;
  }
}

std::string Flags::Get(const std::string& name,
                       const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<int> Flags::GetInt(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  int value = 0;
  const std::string& text = it->second;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("--" + name + ": not an integer: '" +
                                   text + "'");
  }
  return value;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace bdi
