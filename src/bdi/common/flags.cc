#include "bdi/common/flags.h"

#include <charconv>
#include <cstring>

namespace bdi {

Flags::Flags(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0 || argv[i][2] == '\0') {
      ok_ = false;
      bad_ = argv[i];
      return;
    }
    const char* name = argv[i] + 2;
    if (const char* eq = std::strchr(name, '=')) {
      if (eq == name) {
        ok_ = false;
        bad_ = argv[i];
        return;
      }
      values_[std::string(name, eq)] = eq + 1;
      continue;
    }
    if (i + 1 >= argc) {
      ok_ = false;
      bad_ = argv[i];
      return;
    }
    values_[name] = argv[i + 1];
    ++i;
  }
}

std::string Flags::Get(const std::string& name,
                       const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Flags::GetInt(const std::string& name, int fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  int value = 0;
  const std::string& text = it->second;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    ok_ = false;
    bad_ = text;
    return fallback;
  }
  return value;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace bdi
