#ifndef BDI_COMMON_RESULT_H_
#define BDI_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "bdi/common/status.h"

namespace bdi {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent (the StatusOr idiom). Accessing the value of a failed
/// Result aborts the process; callers must check `ok()` first or use
/// `BDI_ASSIGN_OR_RETURN`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse:
  /// `return value;` / `return Status::InvalidArgument(...);`.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : state_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {
    if (std::get<Status>(state_).ok()) {
      // An OK status carries no value; this is a programming error.
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// OK if a value is present, otherwise the stored error.
  Status status() const {
    if (ok()) {
      return Status::OK();
    }
    return std::get<Status>(state_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(state_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(state_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    if (ok()) {
      return std::get<T>(state_);
    }
    return fallback;
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::abort();
    }
  }

  std::variant<T, Status> state_;
};

/// Evaluates `rexpr` (a Result<T>), propagating a failure to the caller and
/// otherwise binding the value to `lhs`.
#define BDI_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto BDI_CONCAT_(bdi_result_, __LINE__) = (rexpr);             \
  if (!BDI_CONCAT_(bdi_result_, __LINE__).ok()) {                \
    return BDI_CONCAT_(bdi_result_, __LINE__).status();          \
  }                                                              \
  lhs = std::move(BDI_CONCAT_(bdi_result_, __LINE__)).value()

#define BDI_CONCAT_IMPL_(a, b) a##b
#define BDI_CONCAT_(a, b) BDI_CONCAT_IMPL_(a, b)

}  // namespace bdi

#endif  // BDI_COMMON_RESULT_H_
