#ifndef BDI_SELECT_SOURCE_SELECTION_H_
#define BDI_SELECT_SOURCE_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bdi/fusion/claims.h"
#include "bdi/model/types.h"

namespace bdi::select {

/// What the selector knows about a candidate source before integrating it.
struct SourceProfile {
  SourceId id = kInvalidSource;
  /// Estimated accuracy (e.g. from a sample fusion or past integration).
  double accuracy = 0.8;
  /// Fraction of the domain's entities the source covers, in [0, 1].
  double coverage = 0.1;
  /// Cost of acquiring/integrating the source.
  double cost = 1.0;
};

struct SelectionConfig {
  /// Assumed number of false values per item (the fusion model's n). Small
  /// values model domains where wrong values collide (booleans, gates,
  /// rounded prices) — the regime where extra bad sources genuinely hurt.
  double n_false_values = 4.0;
  /// Monte Carlo samples for estimating fused accuracy of a source set.
  int mc_samples = 4000;
  uint64_t seed = 11;
  /// Weight of cost in the net gain: gain = quality - cost_weight * cost.
  double cost_weight = 0.0;
  /// false (default): plain majority vote, the fusion model of the "Less
  /// is More" analysis, under which low-accuracy sources can reduce fused
  /// accuracy. true: accuracy-weighted (log-odds) voting — an oracle-
  /// weighted upper bound under which extra sources rarely hurt.
  bool accuracy_weighted = false;
};

/// Estimated probability that voting over sources with the given
/// accuracies returns the true value (Monte Carlo under the
/// n-false-values model). The marginal version of the "Less is More"
/// quality function.
double EstimateFusionAccuracy(const std::vector<double>& accuracies,
                              const SelectionConfig& config);

/// Expected fraction of entities covered by at least one selected source,
/// assuming independent coverage.
double EstimateCoverage(const std::vector<double>& coverages);

/// Quality of a source set: estimated fused accuracy x expected coverage.
double EstimateQuality(const std::vector<SourceProfile>& selected,
                       const SelectionConfig& config);

/// An inspection order with per-prefix quality/cost/gain curves.
struct SelectionResult {
  std::string strategy;
  std::vector<SourceId> order;
  std::vector<double> quality;  ///< quality after integrating prefix k+1
  std::vector<double> cost;     ///< cumulative cost
  std::vector<double> gain;     ///< quality - cost_weight * cost
  /// Prefix length maximizing gain (the "less is more" stopping point).
  size_t best_prefix = 0;
};

/// Greedy marginal-gain selection (GRG): repeatedly add the source with
/// the largest net-gain improvement; the returned curves cover the full
/// ordering so callers can see the decline past the optimum.
SelectionResult GreedySelect(const std::vector<SourceProfile>& profiles,
                             const SelectionConfig& config);

/// Baseline orderings evaluated with the same quality function.
SelectionResult OrderByAccuracy(const std::vector<SourceProfile>& profiles,
                                const SelectionConfig& config);
SelectionResult OrderByCoverage(const std::vector<SourceProfile>& profiles,
                                const SelectionConfig& config);
SelectionResult RandomOrder(const std::vector<SourceProfile>& profiles,
                            const SelectionConfig& config);

/// Restriction of a claim database to a subset of sources — used to
/// *measure* (rather than estimate) the quality of a selection by actually
/// fusing the retained claims.
fusion::ClaimDb RestrictToSources(const fusion::ClaimDb& db,
                                  const std::vector<bool>& keep);

}  // namespace bdi::select

#endif  // BDI_SELECT_SOURCE_SELECTION_H_
