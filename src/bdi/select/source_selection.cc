#include "bdi/select/source_selection.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "bdi/common/logging.h"
#include "bdi/common/metrics.h"
#include "bdi/common/random.h"
#include "bdi/common/trace.h"

namespace bdi::select {

namespace {

metrics::Counter& ConsideredCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.select.sources.considered");
  return *counter;
}

metrics::Counter& SelectedCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.select.sources.selected");
  return *counter;
}

}  // namespace

double EstimateFusionAccuracy(const std::vector<double>& accuracies,
                              const SelectionConfig& config) {
  if (accuracies.empty()) return 0.0;
  Rng rng(config.seed);
  int n_false = std::max(1, static_cast<int>(config.n_false_values));
  std::vector<double> weight(accuracies.size(), 1.0);
  if (config.accuracy_weighted) {
    for (size_t s = 0; s < accuracies.size(); ++s) {
      double a = std::clamp(accuracies[s], 0.01, 0.99);
      weight[s] =
          std::max(0.0, std::log(config.n_false_values * a / (1.0 - a)));
    }
  }
  int correct = 0;
  std::vector<double> false_votes(n_false);
  for (int sample = 0; sample < config.mc_samples; ++sample) {
    double true_votes = 0.0;
    std::fill(false_votes.begin(), false_votes.end(), 0.0);
    for (size_t s = 0; s < accuracies.size(); ++s) {
      if (rng.Bernoulli(accuracies[s])) {
        true_votes += weight[s];
      } else {
        false_votes[rng.UniformInt(0, n_false - 1)] += weight[s];
      }
    }
    double best_false =
        *std::max_element(false_votes.begin(), false_votes.end());
    if (true_votes > best_false) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(config.mc_samples);
}

double EstimateCoverage(const std::vector<double>& coverages) {
  double uncovered = 1.0;
  for (double c : coverages) {
    uncovered *= 1.0 - std::clamp(c, 0.0, 1.0);
  }
  return 1.0 - uncovered;
}

double EstimateQuality(const std::vector<SourceProfile>& selected,
                       const SelectionConfig& config) {
  if (selected.empty()) return 0.0;
  std::vector<double> accuracies, coverages;
  accuracies.reserve(selected.size());
  coverages.reserve(selected.size());
  for (const SourceProfile& p : selected) {
    accuracies.push_back(p.accuracy);
    coverages.push_back(p.coverage);
  }
  return EstimateFusionAccuracy(accuracies, config) *
         EstimateCoverage(coverages);
}

namespace {

/// Evaluates the quality/cost/gain curves for a fixed ordering.
SelectionResult CurvesForOrder(const std::vector<SourceProfile>& profiles,
                               std::vector<size_t> order,
                               const SelectionConfig& config,
                               std::string strategy) {
  SelectionResult result;
  result.strategy = std::move(strategy);
  std::vector<SourceProfile> prefix;
  double cumulative_cost = 0.0;
  double best_gain = -1e300;
  for (size_t k = 0; k < order.size(); ++k) {
    const SourceProfile& p = profiles[order[k]];
    prefix.push_back(p);
    cumulative_cost += p.cost;
    double quality = EstimateQuality(prefix, config);
    double gain = quality - config.cost_weight * cumulative_cost;
    result.order.push_back(p.id);
    result.quality.push_back(quality);
    result.cost.push_back(cumulative_cost);
    result.gain.push_back(gain);
    if (gain > best_gain) {
      best_gain = gain;
      result.best_prefix = k + 1;
    }
  }
  return result;
}

}  // namespace

SelectionResult GreedySelect(const std::vector<SourceProfile>& profiles,
                             const SelectionConfig& config) {
  trace::StageSpan span("select");
  span.AddItems(profiles.size());
  ConsideredCounter().Add(profiles.size());
  std::vector<bool> used(profiles.size(), false);
  std::vector<size_t> order;
  std::vector<SourceProfile> prefix;
  double current_quality = 0.0;
  double cumulative_cost = 0.0;
  for (size_t step = 0; step < profiles.size(); ++step) {
    double best_delta = -1e300;
    size_t best_index = SIZE_MAX;
    double best_quality = 0.0;
    for (size_t i = 0; i < profiles.size(); ++i) {
      if (used[i]) continue;
      prefix.push_back(profiles[i]);
      double quality = EstimateQuality(prefix, config);
      prefix.pop_back();
      double delta = (quality - current_quality) -
                     config.cost_weight * profiles[i].cost;
      if (delta > best_delta) {
        best_delta = delta;
        best_index = i;
        best_quality = quality;
      }
    }
    BDI_CHECK(best_index != SIZE_MAX);
    used[best_index] = true;
    order.push_back(best_index);
    prefix.push_back(profiles[best_index]);
    current_quality = best_quality;
    cumulative_cost += profiles[best_index].cost;
  }
  SelectionResult result = CurvesForOrder(profiles, order, config, "greedy");
  SelectedCounter().Add(result.best_prefix);
  return result;
}

SelectionResult OrderByAccuracy(const std::vector<SourceProfile>& profiles,
                                const SelectionConfig& config) {
  std::vector<size_t> order(profiles.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    if (profiles[x].accuracy != profiles[y].accuracy) {
      return profiles[x].accuracy > profiles[y].accuracy;
    }
    return x < y;
  });
  return CurvesForOrder(profiles, order, config, "by-accuracy");
}

SelectionResult OrderByCoverage(const std::vector<SourceProfile>& profiles,
                                const SelectionConfig& config) {
  std::vector<size_t> order(profiles.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    if (profiles[x].coverage != profiles[y].coverage) {
      return profiles[x].coverage > profiles[y].coverage;
    }
    return x < y;
  });
  return CurvesForOrder(profiles, order, config, "by-coverage");
}

SelectionResult RandomOrder(const std::vector<SourceProfile>& profiles,
                            const SelectionConfig& config) {
  std::vector<size_t> order(profiles.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(config.seed);
  rng.Shuffle(&order);
  return CurvesForOrder(profiles, order, config, "random");
}

fusion::ClaimDb RestrictToSources(const fusion::ClaimDb& db,
                                  const std::vector<bool>& keep) {
  fusion::ClaimDb restricted;
  restricted.set_num_sources(db.num_sources());
  for (const fusion::DataItem& item : db.items()) {
    fusion::DataItem copy;
    copy.entity = item.entity;
    copy.attr = item.attr;
    for (const fusion::Claim& claim : item.claims) {
      if (claim.source >= 0 &&
          static_cast<size_t>(claim.source) < keep.size() &&
          keep[claim.source]) {
        copy.claims.push_back(claim);
      }
    }
    if (!copy.claims.empty()) {
      restricted.AddItem(std::move(copy));
    }
  }
  return restricted;
}

}  // namespace bdi::select
