#ifndef BDI_MODEL_TYPES_H_
#define BDI_MODEL_TYPES_H_

#include <cstdint>
#include <functional>

#include "bdi/common/hash.h"

namespace bdi {

/// Index of a source (web site) within a Dataset.
using SourceId = int32_t;

/// Interned id of a raw attribute-name string within a Dataset.
using AttrId = int32_t;

/// Ground-truth entity id (synthetic worlds) or cluster id (linkage output).
using EntityId = int32_t;

/// Global index of a record within a Dataset.
using RecordIdx = int32_t;

inline constexpr SourceId kInvalidSource = -1;
inline constexpr AttrId kInvalidAttr = -1;
inline constexpr EntityId kInvalidEntity = -1;
inline constexpr RecordIdx kInvalidRecord = -1;

/// An attribute as published by one particular source. Schema alignment
/// clusters these; two sources using the same raw name still contribute two
/// distinct SourceAttrs.
struct SourceAttr {
  SourceId source = kInvalidSource;
  AttrId attr = kInvalidAttr;

  friend bool operator==(const SourceAttr& a, const SourceAttr& b) {
    return a.source == b.source && a.attr == b.attr;
  }
  friend bool operator<(const SourceAttr& a, const SourceAttr& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.attr < b.attr;
  }
};

struct SourceAttrHash {
  size_t operator()(const SourceAttr& sa) const {
    return HashCombine(std::hash<int32_t>()(sa.source),
                       std::hash<int32_t>()(sa.attr));
  }
};

}  // namespace bdi

#endif  // BDI_MODEL_TYPES_H_
