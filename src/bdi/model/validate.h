#ifndef BDI_MODEL_VALIDATE_H_
#define BDI_MODEL_VALIDATE_H_

#include <string>
#include <vector>

namespace bdi {

/// One problem found while validating an ingestion file. `row` is the
/// 1-based CSV row the problem was found on (0 for file-level problems
/// such as an unreadable file or a bad header).
struct ValidationIssue {
  size_t row = 0;
  std::string message;
};

/// Outcome of ValidateDatasetCsv / ValidateLabelsCsv: summary counts plus
/// the issues found. Unlike the readers (which stop at the first error),
/// validation scans the whole file and reports every problem, so one run
/// gives a complete repair worklist.
struct ValidationReport {
  size_t rows = 0;        ///< data rows scanned (header excluded)
  size_t records = 0;     ///< distinct record ids seen
  size_t sources = 0;     ///< distinct source names seen
  size_t attributes = 0;  ///< distinct attribute names seen
  std::vector<ValidationIssue> issues;
  /// True when more issues existed than the per-run cap kept.
  bool truncated = false;

  bool ok() const { return issues.empty(); }
};

/// Scans a corpus CSV (`source,record,attribute,value`) and collects every
/// structural problem ReadDatasetCsv would reject — CSV syntax errors, a
/// wrong header, short/long rows, non-integer or negative record ids,
/// record groups split across sources or re-opened later in the file, and
/// empty source/attribute names. Never aborts on any input.
ValidationReport ValidateDatasetCsv(const std::string& path);

/// Scans a labels CSV (`record,entity`) the same way: syntax, header,
/// field counts, integer ranges, and duplicate record rows.
ValidationReport ValidateLabelsCsv(const std::string& path);

}  // namespace bdi

#endif  // BDI_MODEL_VALIDATE_H_
