#include "bdi/model/dataset.h"

#include <algorithm>
#include <set>

#include "bdi/common/logging.h"

namespace bdi {

SourceId Dataset::AddSource(std::string name) {
  SourceId id = static_cast<SourceId>(sources_.size());
  sources_.push_back(SourceInfo{id, std::move(name), {}});
  return id;
}

AttrId Dataset::InternAttr(std::string_view name) {
  auto it = attr_ids_.find(std::string(name));
  if (it != attr_ids_.end()) return it->second;
  AttrId id = static_cast<AttrId>(attr_names_.size());
  attr_names_.emplace_back(name);
  attr_ids_.emplace(std::string(name), id);
  return id;
}

std::optional<AttrId> Dataset::FindAttr(std::string_view name) const {
  auto it = attr_ids_.find(std::string(name));
  if (it == attr_ids_.end()) return std::nullopt;
  return it->second;
}

RecordIdx Dataset::AddRecord(
    SourceId source,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::vector<Field> interned;
  interned.reserve(fields.size());
  for (const auto& [name, value] : fields) {
    interned.push_back(Field{InternAttr(name), value});
  }
  return AddRecord(source, std::move(interned));
}

RecordIdx Dataset::AddRecord(SourceId source, std::vector<Field> fields) {
  BDI_CHECK(source >= 0 && static_cast<size_t>(source) < sources_.size())
      << "unknown source " << source;
  RecordIdx idx = static_cast<RecordIdx>(records_.size());
  records_.push_back(Record{idx, source, std::move(fields)});
  sources_[source].records.push_back(idx);
  return idx;
}

std::vector<SourceAttr> Dataset::AllSourceAttrs() const {
  std::set<SourceAttr> seen;
  for (const Record& r : records_) {
    for (const Field& f : r.fields) {
      seen.insert(SourceAttr{r.source, f.attr});
    }
  }
  return std::vector<SourceAttr>(seen.begin(), seen.end());
}

}  // namespace bdi
