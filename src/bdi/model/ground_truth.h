#ifndef BDI_MODEL_GROUND_TRUTH_H_
#define BDI_MODEL_GROUND_TRUTH_H_

#include <map>
#include <string>
#include <vector>

#include "bdi/model/dataset.h"
#include "bdi/model/types.h"

namespace bdi {

/// A directed copy edge: `copier` copies from `original` with the given
/// per-item probability.
struct CopyEdge {
  SourceId copier = kInvalidSource;
  SourceId original = kInvalidSource;
  double copy_rate = 0.0;

  friend bool operator==(const CopyEdge& a, const CopyEdge& b) {
    return a.copier == b.copier && a.original == b.original;
  }
  friend bool operator<(const CopyEdge& a, const CopyEdge& b) {
    if (a.copier != b.copier) return a.copier < b.copier;
    return a.original < b.original;
  }
};

/// Everything the synthetic world knows that a real crawl would not:
/// record -> entity labels, the true value of every (entity, canonical
/// attribute) item, per-source accuracies and the copy graph. Used only for
/// evaluation — the integration pipeline never reads it.
struct GroundTruth {
  /// entity_of_record[idx] is the entity the record describes.
  std::vector<EntityId> entity_of_record;

  /// Canonical (world-level) attribute names, e.g. "weight".
  std::vector<std::string> canonical_attrs;

  /// true_values[entity][canonical-attr-index] — empty string when the
  /// entity has no value for that attribute.
  std::vector<std::vector<std::string>> true_values;

  /// For each SourceAttr, the canonical attribute index it renders
  /// (schema-alignment ground truth).
  std::map<SourceAttr, int> canonical_of_source_attr;

  /// Probability each source publishes the true value for an item.
  std::vector<double> source_accuracy;

  /// Directed copy relationships planted by the generator.
  std::vector<CopyEdge> copy_edges;

  /// Sources planted as deceitful (systematic numeric inflation).
  std::vector<SourceId> deceitful_sources;

  /// One source claim at canonical-value granularity (what the source
  /// asserts for one (entity, canonical attribute) item, before surface
  /// formatting). Lets evaluation and fusion-only experiments bypass the
  /// extraction/normalization stages.
  struct TrueClaim {
    SourceId source = kInvalidSource;
    EntityId entity = kInvalidEntity;
    int canonical_attr = -1;
    std::string value;
    bool copied = false;  ///< value was copied from the copier's original
  };
  std::vector<TrueClaim> claims;

  size_t num_entities() const { return true_values.size(); }
};

/// Re-keys `truth.canonical_of_source_attr` (and claim source ids) from
/// the dataset the truth was generated against onto another dataset
/// holding the same corpus (e.g. a CSV round trip or a streaming replay).
/// Sources are matched by name and attributes by raw name; entries whose
/// source or attribute does not exist in `to` are dropped.
///
/// Needed because attribute/source ids are interning artifacts: a replayed
/// corpus is identical content-wise but numbers them differently, and
/// id-keyed evaluation would silently mismatch.
GroundTruth RemapGroundTruth(const GroundTruth& truth, const Dataset& from,
                             const Dataset& to);

}  // namespace bdi

#endif  // BDI_MODEL_GROUND_TRUTH_H_
