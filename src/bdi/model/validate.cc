#include "bdi/model/validate.h"

#include <charconv>
#include <cstdint>
#include <limits>
#include <set>
#include <string>

#include "bdi/common/csv.h"
#include "bdi/model/types.h"

namespace bdi {

namespace {

// Enough to make one run a useful worklist without flooding the terminal
// on a comprehensively broken file.
constexpr size_t kMaxIssues = 50;

void AddIssue(ValidationReport* report, size_t row, std::string message) {
  if (report->issues.size() >= kMaxIssues) {
    report->truncated = true;
    return;
  }
  report->issues.push_back(ValidationIssue{row, std::move(message)});
}

bool ParseId(const std::string& text, int64_t* value) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

/// Loads and parses `path`, checks the header, and returns the rows.
/// Returns false (after recording the issue) when the file cannot even be
/// row-scanned, in which case per-row validation is skipped.
bool LoadRows(const std::string& path,
              const std::vector<std::string>& header,
              ValidationReport* report,
              std::vector<std::vector<std::string>>* rows) {
  Result<std::vector<std::vector<std::string>>> parsed = ReadCsvFile(path);
  if (!parsed.ok()) {
    AddIssue(report, 0, parsed.status().ToString());
    return false;
  }
  *rows = std::move(parsed).value();
  if (rows->empty()) {
    AddIssue(report, 0, "empty file (expected header '" +
                            EncodeCsvRow(header) + "')");
    return false;
  }
  if ((*rows)[0] != header) {
    AddIssue(report, 1, "bad header '" + EncodeCsvRow((*rows)[0]) +
                            "' (expected '" + EncodeCsvRow(header) + "')");
  }
  report->rows = rows->size() - 1;
  return true;
}

}  // namespace

ValidationReport ValidateDatasetCsv(const std::string& path) {
  ValidationReport report;
  std::vector<std::vector<std::string>> rows;
  if (!LoadRows(path, {"source", "record", "attribute", "value"}, &report,
                &rows)) {
    return report;
  }
  std::set<std::string> sources;
  std::set<std::string> attributes;
  std::set<int64_t> seen_records;
  int64_t current_record = -1;
  std::string current_source;
  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.size() != 4) {
      AddIssue(&report, r + 1,
               "expected 4 fields, got " + std::to_string(row.size()));
      continue;
    }
    if (row[0].empty()) AddIssue(&report, r + 1, "empty source name");
    if (row[2].empty()) AddIssue(&report, r + 1, "empty attribute name");
    sources.insert(row[0]);
    attributes.insert(row[2]);
    int64_t record_id = 0;
    if (!ParseId(row[1], &record_id)) {
      AddIssue(&report, r + 1,
               "record id is not an integer: '" + row[1] + "'");
      continue;
    }
    if (record_id < 0) {
      AddIssue(&report, r + 1,
               "negative record id: " + std::to_string(record_id));
      continue;
    }
    if (record_id != current_record) {
      if (!seen_records.insert(record_id).second) {
        AddIssue(&report, r + 1,
                 "record " + row[1] +
                     " re-opens an earlier group (rows must be grouped)");
      }
      current_record = record_id;
      current_source = row[0];
    } else if (row[0] != current_source) {
      AddIssue(&report, r + 1,
               "record " + row[1] + " spans sources '" + current_source +
                   "' and '" + row[0] + "' (rows must be grouped)");
    }
  }
  report.records = seen_records.size();
  report.sources = sources.size();
  report.attributes = attributes.size();
  return report;
}

ValidationReport ValidateLabelsCsv(const std::string& path) {
  ValidationReport report;
  std::vector<std::vector<std::string>> rows;
  if (!LoadRows(path, {"record", "entity"}, &report, &rows)) {
    return report;
  }
  std::set<int64_t> seen_records;
  size_t data_rows = rows.size() - 1;
  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.size() != 2) {
      AddIssue(&report, r + 1,
               "expected 2 fields, got " + std::to_string(row.size()));
      continue;
    }
    int64_t record = 0;
    int64_t entity = 0;
    if (!ParseId(row[0], &record)) {
      AddIssue(&report, r + 1,
               "record id is not an integer: '" + row[0] + "'");
      continue;
    }
    if (!ParseId(row[1], &entity)) {
      AddIssue(&report, r + 1,
               "entity id is not an integer: '" + row[1] + "'");
      continue;
    }
    if (record < 0 || static_cast<size_t>(record) >= data_rows) {
      AddIssue(&report, r + 1, "record id out of range: " + row[0]);
    } else if (!seen_records.insert(record).second) {
      AddIssue(&report, r + 1, "duplicate row for record " + row[0]);
    }
    if (entity < kInvalidEntity ||
        entity > std::numeric_limits<EntityId>::max()) {
      AddIssue(&report, r + 1, "entity id out of range: " + row[1]);
    }
  }
  report.records = seen_records.size();
  return report;
}

}  // namespace bdi
