#include "bdi/model/ground_truth.h"

#include <map>

namespace bdi {

GroundTruth RemapGroundTruth(const GroundTruth& truth, const Dataset& from,
                             const Dataset& to) {
  GroundTruth out = truth;

  // Source id translation by name.
  std::map<std::string, SourceId> to_source;
  for (const SourceInfo& source : to.sources()) {
    to_source.emplace(source.name, source.id);
  }
  auto translate_source = [&](SourceId source) -> SourceId {
    if (source < 0 ||
        static_cast<size_t>(source) >= from.num_sources()) {
      return kInvalidSource;
    }
    auto it = to_source.find(from.source(source).name);
    return it == to_source.end() ? kInvalidSource : it->second;
  };

  out.canonical_of_source_attr.clear();
  for (const auto& [sa, canonical] : truth.canonical_of_source_attr) {
    SourceId source = translate_source(sa.source);
    if (source == kInvalidSource) continue;
    std::optional<AttrId> attr = to.FindAttr(from.attr_name(sa.attr));
    if (!attr.has_value()) continue;
    out.canonical_of_source_attr[SourceAttr{source, *attr}] = canonical;
  }

  out.claims.clear();
  out.claims.reserve(truth.claims.size());
  for (GroundTruth::TrueClaim claim : truth.claims) {
    claim.source = translate_source(claim.source);
    if (claim.source == kInvalidSource) continue;
    out.claims.push_back(std::move(claim));
  }

  if (truth.source_accuracy.size() == from.num_sources()) {
    out.source_accuracy.assign(to.num_sources(), 0.0);
    for (size_t s = 0; s < from.num_sources(); ++s) {
      SourceId target = translate_source(static_cast<SourceId>(s));
      if (target != kInvalidSource) {
        out.source_accuracy[target] = truth.source_accuracy[s];
      }
    }
  }

  std::vector<CopyEdge> edges;
  for (CopyEdge edge : truth.copy_edges) {
    edge.copier = translate_source(edge.copier);
    edge.original = translate_source(edge.original);
    if (edge.copier != kInvalidSource && edge.original != kInvalidSource) {
      edges.push_back(edge);
    }
  }
  out.copy_edges = std::move(edges);
  return out;
}

}  // namespace bdi
