#include "bdi/model/dataset_io.h"

#include <charconv>
#include <limits>
#include <map>

#include "bdi/common/csv.h"

namespace bdi {

namespace {

// Row numbers in messages are 1-based CSV rows (row 1 is the header).
Result<int64_t> ParseIntField(const std::string& text, size_t row,
                              const char* what) {
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("row " + std::to_string(row + 1) + ": " +
                                   what + " is not an integer: '" + text +
                                   "'");
  }
  return value;
}

}  // namespace

LongCsvGrouper::LongCsvGrouper(RecordSink sink) : sink_(std::move(sink)) {}

Status LongCsvGrouper::CheckHeader(const std::vector<std::string>& row,
                                   const std::string& path) {
  if (row !=
      std::vector<std::string>{"source", "record", "attribute", "value"}) {
    return Status::InvalidArgument(
        "expected header 'source,record,attribute,value' in " + path);
  }
  return Status::OK();
}

Status LongCsvGrouper::Flush() {
  if (current_record_ >= 0 && !fields_.empty()) {
    BDI_RETURN_IF_ERROR(sink_(current_source_, std::move(fields_)));
  }
  fields_.clear();
  return Status::OK();
}

Status LongCsvGrouper::AddRow(const std::vector<std::string>& row,
                              size_t csv_row) {
  if (row.size() != 4) {
    return Status::InvalidArgument("row " + std::to_string(csv_row) +
                                   ": expected 4 fields, got " +
                                   std::to_string(row.size()));
  }
  BDI_ASSIGN_OR_RETURN(int64_t record_id,
                       ParseIntField(row[1], csv_row - 1, "record id"));
  if (record_id < 0) {
    return Status::OutOfRange("row " + std::to_string(csv_row) +
                              ": negative record id: " + row[1]);
  }
  if (record_id != current_record_) {
    BDI_RETURN_IF_ERROR(Flush());
    current_record_ = record_id;
    current_source_ = row[0];
  } else if (row[0] != current_source_) {
    return Status::InvalidArgument(
        "row " + std::to_string(csv_row) + ": record " + row[1] +
        " spans two sources (rows must be grouped)");
  }
  fields_.emplace_back(row[2], row[3]);
  return Status::OK();
}

Status LongCsvGrouper::Finish() { return Flush(); }

Status WriteDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"source", "record", "attribute", "value"});
  for (const Record& record : dataset.records()) {
    for (const Field& field : record.fields) {
      rows.push_back({dataset.source(record.source).name,
                      std::to_string(record.idx),
                      dataset.attr_name(field.attr), field.value});
    }
  }
  return WriteCsvFile(path, rows);
}

Result<Dataset> ReadDatasetCsv(const std::string& path) {
  BDI_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ReadCsvFile(path));
  if (rows.empty()) {
    return Status::InvalidArgument(
        "expected header 'source,record,attribute,value' in " + path);
  }
  BDI_RETURN_IF_ERROR(LongCsvGrouper::CheckHeader(rows[0], path));
  Dataset dataset;
  std::map<std::string, SourceId> sources;
  // Interning at record-completion time assigns the same source/attribute
  // ids as the historical row-time interning: a name's first completed
  // record is also the first row-order record mentioning it (record rows
  // are contiguous). The .bds writer relies on this — see LongCsvGrouper.
  LongCsvGrouper grouper(
      [&](const std::string& source,
          std::vector<std::pair<std::string, std::string>>&& fields) {
        auto it = sources.find(source);
        if (it == sources.end()) {
          it = sources.emplace(source, dataset.AddSource(source)).first;
        }
        dataset.AddRecord(it->second, fields);
        return Status::OK();
      });
  for (size_t r = 1; r < rows.size(); ++r) {
    BDI_RETURN_IF_ERROR(grouper.AddRow(rows[r], r + 1));
  }
  BDI_RETURN_IF_ERROR(grouper.Finish());
  return dataset;
}

Status WriteLabelsCsv(const std::vector<EntityId>& labels,
                      const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"record", "entity"});
  for (size_t r = 0; r < labels.size(); ++r) {
    rows.push_back({std::to_string(r), std::to_string(labels[r])});
  }
  return WriteCsvFile(path, rows);
}

Result<std::vector<EntityId>> ReadLabelsCsv(const std::string& path) {
  BDI_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ReadCsvFile(path));
  if (rows.empty() ||
      rows[0] != std::vector<std::string>{"record", "entity"}) {
    return Status::InvalidArgument("expected header 'record,entity' in " +
                                   path);
  }
  std::vector<EntityId> labels(rows.size() - 1, kInvalidEntity);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 2) {
      return Status::InvalidArgument("row " + std::to_string(r + 1) +
                                     ": expected 2 fields, got " +
                                     std::to_string(rows[r].size()));
    }
    BDI_ASSIGN_OR_RETURN(int64_t record,
                         ParseIntField(rows[r][0], r, "record id"));
    BDI_ASSIGN_OR_RETURN(int64_t entity,
                         ParseIntField(rows[r][1], r, "entity id"));
    if (record < 0 || static_cast<size_t>(record) >= labels.size()) {
      return Status::OutOfRange("row " + std::to_string(r + 1) +
                                ": record id out of range: " + rows[r][0]);
    }
    if (entity < kInvalidEntity ||
        entity > std::numeric_limits<EntityId>::max()) {
      return Status::OutOfRange("row " + std::to_string(r + 1) +
                                ": entity id out of range: " + rows[r][1]);
    }
    labels[static_cast<size_t>(record)] = static_cast<EntityId>(entity);
  }
  return labels;
}

}  // namespace bdi
