#include "bdi/model/dataset_io.h"

#include <charconv>
#include <limits>
#include <map>

#include "bdi/common/csv.h"

namespace bdi {

namespace {

// Row numbers in messages are 1-based CSV rows (row 1 is the header).
Result<int64_t> ParseIntField(const std::string& text, size_t row,
                              const char* what) {
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("row " + std::to_string(row + 1) + ": " +
                                   what + " is not an integer: '" + text +
                                   "'");
  }
  return value;
}

}  // namespace

Status WriteDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"source", "record", "attribute", "value"});
  for (const Record& record : dataset.records()) {
    for (const Field& field : record.fields) {
      rows.push_back({dataset.source(record.source).name,
                      std::to_string(record.idx),
                      dataset.attr_name(field.attr), field.value});
    }
  }
  return WriteCsvFile(path, rows);
}

Result<Dataset> ReadDatasetCsv(const std::string& path) {
  BDI_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ReadCsvFile(path));
  if (rows.empty() || rows[0] !=
                          std::vector<std::string>{"source", "record",
                                                   "attribute", "value"}) {
    return Status::InvalidArgument(
        "expected header 'source,record,attribute,value' in " + path);
  }
  Dataset dataset;
  std::map<std::string, SourceId> sources;
  int64_t current_record = -1;
  SourceId current_source = kInvalidSource;
  std::vector<Field> fields;
  auto flush = [&]() {
    if (current_record >= 0 && !fields.empty()) {
      dataset.AddRecord(current_source, std::move(fields));
    }
    fields.clear();
  };
  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.size() != 4) {
      return Status::InvalidArgument("row " + std::to_string(r + 1) +
                                     ": expected 4 fields, got " +
                                     std::to_string(row.size()));
    }
    auto it = sources.find(row[0]);
    if (it == sources.end()) {
      it = sources.emplace(row[0], dataset.AddSource(row[0])).first;
    }
    BDI_ASSIGN_OR_RETURN(int64_t record_id,
                         ParseIntField(row[1], r, "record id"));
    if (record_id < 0) {
      return Status::OutOfRange("row " + std::to_string(r + 1) +
                                ": negative record id: " + row[1]);
    }
    if (record_id != current_record) {
      flush();
      current_record = record_id;
      current_source = it->second;
    } else if (it->second != current_source) {
      return Status::InvalidArgument(
          "row " + std::to_string(r + 1) + ": record " + row[1] +
          " spans two sources (rows must be grouped)");
    }
    fields.push_back(Field{dataset.InternAttr(row[2]), row[3]});
  }
  flush();
  return dataset;
}

Status WriteLabelsCsv(const std::vector<EntityId>& labels,
                      const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"record", "entity"});
  for (size_t r = 0; r < labels.size(); ++r) {
    rows.push_back({std::to_string(r), std::to_string(labels[r])});
  }
  return WriteCsvFile(path, rows);
}

Result<std::vector<EntityId>> ReadLabelsCsv(const std::string& path) {
  BDI_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ReadCsvFile(path));
  if (rows.empty() ||
      rows[0] != std::vector<std::string>{"record", "entity"}) {
    return Status::InvalidArgument("expected header 'record,entity' in " +
                                   path);
  }
  std::vector<EntityId> labels(rows.size() - 1, kInvalidEntity);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 2) {
      return Status::InvalidArgument("row " + std::to_string(r + 1) +
                                     ": expected 2 fields, got " +
                                     std::to_string(rows[r].size()));
    }
    BDI_ASSIGN_OR_RETURN(int64_t record,
                         ParseIntField(rows[r][0], r, "record id"));
    BDI_ASSIGN_OR_RETURN(int64_t entity,
                         ParseIntField(rows[r][1], r, "entity id"));
    if (record < 0 || static_cast<size_t>(record) >= labels.size()) {
      return Status::OutOfRange("row " + std::to_string(r + 1) +
                                ": record id out of range: " + rows[r][0]);
    }
    if (entity < kInvalidEntity ||
        entity > std::numeric_limits<EntityId>::max()) {
      return Status::OutOfRange("row " + std::to_string(r + 1) +
                                ": entity id out of range: " + rows[r][1]);
    }
    labels[static_cast<size_t>(record)] = static_cast<EntityId>(entity);
  }
  return labels;
}

}  // namespace bdi
