#ifndef BDI_MODEL_DATASET_IO_H_
#define BDI_MODEL_DATASET_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/common/status.h"
#include "bdi/model/dataset.h"
#include "bdi/model/types.h"

namespace bdi {

/// Groups long-CSV rows (`source,record,attribute,value`) back into records
/// and hands each completed record to a sink. This is the single shared
/// implementation of the grouping contract — contiguous record rows, sources
/// created on first use, integer non-negative record ids — used by both
/// `ReadDatasetCsv` (in-memory) and the streaming `.bds` converter in
/// `bdi/storage`, so the two ingestion paths cannot drift apart.
///
/// Records are emitted in row order, and within a record fields keep row
/// order, so a sink that interns source/attribute names as records arrive
/// assigns exactly the ids `ReadDatasetCsv` would: a name's first emitted
/// record is also the first row-order record mentioning it.
class LongCsvGrouper {
 public:
  /// Receives one completed record: its source name plus the
  /// (attribute, value) pairs in row order. A non-OK return aborts grouping
  /// and is propagated out of AddRow/Finish.
  using RecordSink = std::function<Status(
      const std::string& source,
      std::vector<std::pair<std::string, std::string>>&& fields)>;

  /// The sink receives every completed record; it is invoked as group
  /// boundaries are detected, and once more from `Finish()` for the final
  /// group.
  explicit LongCsvGrouper(RecordSink sink);

  /// Validates the header row; the expected header is exactly
  /// `source,record,attribute,value`. `path` names the file in the error.
  static Status CheckHeader(const std::vector<std::string>& row,
                            const std::string& path);

  /// Consumes one data row. `csv_row` is the 1-based CSV row number used in
  /// error messages (the header is row 1, so the first data row is 2).
  /// Errors (short rows, non-integer or negative record ids, a record group
  /// spanning two sources) match `ReadDatasetCsv` byte for byte.
  Status AddRow(const std::vector<std::string>& row, size_t csv_row);

  /// Flushes the final record. Call exactly once, after the last AddRow.
  Status Finish();

 private:
  Status Flush();

  RecordSink sink_;
  int64_t current_record_ = -1;
  std::string current_source_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Serializes a corpus in long CSV form with the header
/// `source,record,attribute,value` — one row per field, record ids scoped
/// globally. The format round-trips exactly (field order within a record
/// is preserved).
Status WriteDatasetCsv(const Dataset& dataset, const std::string& path);

/// Loads a corpus written by WriteDatasetCsv (or hand-assembled in the
/// same shape). Record rows must be grouped (all fields of a record
/// contiguous); source names may appear in any order and are created on
/// first use. Malformed input (bad header, short rows, non-integer or
/// negative record ids, split record groups) yields a Status naming the
/// offending row — this function never aborts.
Result<Dataset> ReadDatasetCsv(const std::string& path);

/// Serializes record -> entity labels as `record,entity` rows.
Status WriteLabelsCsv(const std::vector<EntityId>& labels,
                      const std::string& path);

/// Loads labels written by WriteLabelsCsv. Every `record` must be a valid
/// 0-based index into the label vector (whose length is the row count);
/// records never mentioned stay `kInvalidEntity`. Malformed rows yield a
/// Status naming the offending row.
Result<std::vector<EntityId>> ReadLabelsCsv(const std::string& path);

}  // namespace bdi

#endif  // BDI_MODEL_DATASET_IO_H_
