#ifndef BDI_MODEL_DATASET_IO_H_
#define BDI_MODEL_DATASET_IO_H_

#include <string>
#include <vector>

#include "bdi/common/result.h"
#include "bdi/common/status.h"
#include "bdi/model/dataset.h"
#include "bdi/model/types.h"

namespace bdi {

/// Serializes a corpus in long CSV form with the header
/// `source,record,attribute,value` — one row per field, record ids scoped
/// globally. The format round-trips exactly (field order within a record
/// is preserved).
Status WriteDatasetCsv(const Dataset& dataset, const std::string& path);

/// Loads a corpus written by WriteDatasetCsv (or hand-assembled in the
/// same shape). Record rows must be grouped (all fields of a record
/// contiguous); source names may appear in any order and are created on
/// first use. Malformed input (bad header, short rows, non-integer or
/// negative record ids, split record groups) yields a Status naming the
/// offending row — this function never aborts.
Result<Dataset> ReadDatasetCsv(const std::string& path);

/// Serializes record -> entity labels as `record,entity` rows.
Status WriteLabelsCsv(const std::vector<EntityId>& labels,
                      const std::string& path);

Result<std::vector<EntityId>> ReadLabelsCsv(const std::string& path);

}  // namespace bdi

#endif  // BDI_MODEL_DATASET_IO_H_
