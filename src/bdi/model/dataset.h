#ifndef BDI_MODEL_DATASET_H_
#define BDI_MODEL_DATASET_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bdi/model/types.h"

namespace bdi {

/// One attribute-value field of a record. Values are kept as raw strings —
/// normalization and typing are the job of the schema-alignment layer.
struct Field {
  AttrId attr = kInvalidAttr;
  std::string value;
};

/// One page/row harvested from a source: a bag of attribute-value pairs.
struct Record {
  RecordIdx idx = kInvalidRecord;
  SourceId source = kInvalidSource;
  std::vector<Field> fields;

  /// First value of `attr`, if present.
  const std::string* Find(AttrId attr) const {
    for (const Field& f : fields) {
      if (f.attr == attr) return &f.value;
    }
    return nullptr;
  }
};

/// Metadata for one data source.
struct SourceInfo {
  SourceId id = kInvalidSource;
  std::string name;
  std::vector<RecordIdx> records;
};

/// A multi-source corpus: the input to the integration pipeline. Attribute
/// names are interned to AttrIds; records are stored once, indexed globally
/// and grouped per source.
///
/// Not thread-safe for writes; safe for concurrent reads after loading.
class Dataset {
 public:
  Dataset() = default;

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Registers a source and returns its id.
  SourceId AddSource(std::string name);

  /// Interns an attribute name (exact raw string) and returns its id.
  AttrId InternAttr(std::string_view name);

  /// Returns the id of `name` if already interned.
  std::optional<AttrId> FindAttr(std::string_view name) const;

  /// Appends a record to `source`; fields are (raw attribute name, value).
  RecordIdx AddRecord(
      SourceId source,
      const std::vector<std::pair<std::string, std::string>>& fields);

  /// Appends a record with pre-interned attribute ids.
  RecordIdx AddRecord(SourceId source, std::vector<Field> fields);

  const Record& record(RecordIdx idx) const { return records_[idx]; }
  const std::vector<Record>& records() const { return records_; }
  const SourceInfo& source(SourceId id) const { return sources_[id]; }
  const std::vector<SourceInfo>& sources() const { return sources_; }
  const std::string& attr_name(AttrId id) const { return attr_names_[id]; }

  size_t num_records() const { return records_.size(); }
  size_t num_sources() const { return sources_.size(); }
  size_t num_attrs() const { return attr_names_.size(); }

  /// Distinct SourceAttrs actually used by at least one record, in
  /// (source, attr) order.
  std::vector<SourceAttr> AllSourceAttrs() const;

 private:
  std::vector<SourceInfo> sources_;
  std::vector<Record> records_;
  std::vector<std::string> attr_names_;
  std::unordered_map<std::string, AttrId> attr_ids_;
};

}  // namespace bdi

#endif  // BDI_MODEL_DATASET_H_
