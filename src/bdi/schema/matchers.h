#ifndef BDI_SCHEMA_MATCHERS_H_
#define BDI_SCHEMA_MATCHERS_H_

#include <vector>

#include "bdi/schema/attribute_stats.h"

namespace bdi::schema {

/// Weights for the combined attribute-correspondence score.
struct AttrMatchConfig {
  double name_weight = 0.7;
  double value_weight = 0.3;
  /// Pairs scoring below this are not materialized as candidate edges.
  double min_score = 0.15;
};

/// Name-based similarity of two attribute profiles: the max of
/// Jaro-Winkler on normalized names and Jaccard on name word-tokens,
/// with a containment bonus ("weight" vs "item weight").
double NameSimilarity(const AttrProfile& a, const AttrProfile& b);

/// Instance-based similarity: Jaccard of sampled value sets for
/// string-typed attributes; numeric-distribution proximity (median/spread
/// agreement) for numeric attributes; 0 across types.
double ValueSimilarity(const AttrProfile& a, const AttrProfile& b);

/// config.name_weight * NameSimilarity + config.value_weight *
/// ValueSimilarity, normalized by total weight.
double CombinedSimilarity(const AttrProfile& a, const AttrProfile& b,
                          const AttrMatchConfig& config);

/// A scored candidate correspondence between two source attributes
/// (indices into AttributeStatistics::profiles()).
struct AttrEdge {
  size_t a = 0;
  size_t b = 0;
  double score = 0.0;
};

/// Scores all cross-source profile pairs and keeps those >= min_score.
/// Same-source pairs are never candidates (a source does not publish the
/// same semantics twice).
std::vector<AttrEdge> BuildCandidateEdges(const AttributeStatistics& stats,
                                          const AttrMatchConfig& config);

}  // namespace bdi::schema

#endif  // BDI_SCHEMA_MATCHERS_H_
