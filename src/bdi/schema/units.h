#ifndef BDI_SCHEMA_UNITS_H_
#define BDI_SCHEMA_UNITS_H_

namespace bdi::schema {

/// Unit-conversion constants worth snapping an estimated scale ratio to
/// (and their inverses): in/cm, oz/g, lb/kg, ft/m, cm/mm, percent,
/// thousands.
inline constexpr double kKnownUnitFactors[] = {2.54,   28.35, 0.4536, 0.3048,
                                               0.3937, 10.0,  100.0,  1000.0};

/// Snaps a measured multiplicative ratio to 1.0 or the closest known
/// conversion factor (or its inverse) within `tolerance` relative error;
/// otherwise returns it unchanged. Non-positive ratios yield 1.0.
double SnapScale(double scale, double tolerance = 0.10);

/// True when `scale` is (close to) a known non-identity unit conversion.
bool IsKnownUnitConversion(double scale);

/// Like IsKnownUnitConversion but restricted to genuine measurement-unit
/// factors (in/cm, oz/g, lb/kg, ft/m) — excludes powers of ten, whose
/// accidental matches are common between unrelated numeric attributes.
/// Used when the conversion hypothesis itself is evidence for a match.
bool IsMeasurementUnitConversion(double scale);

}  // namespace bdi::schema

#endif  // BDI_SCHEMA_UNITS_H_
