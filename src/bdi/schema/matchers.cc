#include "bdi/schema/matchers.h"

#include <algorithm>
#include <cmath>

#include "bdi/schema/units.h"
#include "bdi/text/similarity.h"
#include "bdi/text/tokenizer.h"

namespace bdi::schema {

double NameSimilarity(const AttrProfile& a, const AttrProfile& b) {
  if (a.normalized_name.empty() || b.normalized_name.empty()) return 0.0;
  if (a.normalized_name == b.normalized_name) return 1.0;
  double jw =
      text::JaroWinklerSimilarity(a.normalized_name, b.normalized_name);
  std::vector<std::string> ta = text::TokenSet(a.raw_name);
  std::vector<std::string> tb = text::TokenSet(b.raw_name);
  double jac = text::JaccardSimilarity(ta, tb);
  // Containment bonus: decorated names ("item weight") contain the plain
  // name's tokens entirely.
  double overlap = text::OverlapCoefficient(ta, tb);
  double score = std::max({jw, jac, 0.9 * overlap});
  return std::min(1.0, score);
}

double ValueSimilarity(const AttrProfile& a, const AttrProfile& b) {
  if (a.num_values == 0 || b.num_values == 0) return 0.0;
  bool na = a.IsNumeric(), nb = b.IsNumeric();
  if (na != nb) return 0.0;
  if (!na) {
    return text::JaccardSimilarity(a.sample_values, b.sample_values);
  }
  // Numeric: compare location and spread on a relative scale. When the
  // median ratio snaps to a known unit-conversion constant (cm vs inch,
  // g vs oz), rescale one side first — same semantics, different units.
  double median_a = a.numeric_median;
  double median_b = b.numeric_median;
  double stddev_b = b.numeric_stddev;
  double unit_discount = 1.0;
  if (median_b != 0.0) {
    double ratio = SnapScale(median_a / median_b);
    if (ratio != 1.0 && IsMeasurementUnitConversion(ratio)) {
      median_b *= ratio;
      stddev_b *= ratio;
      unit_discount = 0.9;  // converted agreement is slightly weaker
    }
  }
  double loc_denominator =
      std::max({std::abs(median_a), std::abs(median_b), 1e-9});
  double loc =
      1.0 - std::min(1.0, std::abs(median_a - median_b) / loc_denominator);
  double spread_denominator = std::max({a.numeric_stddev, stddev_b, 1e-9});
  double spread = 1.0 - std::min(1.0, std::abs(a.numeric_stddev - stddev_b) /
                                          spread_denominator);
  // Exact value overlap still counts when scales agree (both-empty sample
  // sets are no evidence, not perfect agreement).
  double jac = a.sample_values.empty() || b.sample_values.empty()
                   ? 0.0
                   : text::JaccardSimilarity(a.sample_values,
                                             b.sample_values);
  return std::max(jac, unit_discount * (0.7 * loc + 0.3 * spread));
}

double CombinedSimilarity(const AttrProfile& a, const AttrProfile& b,
                          const AttrMatchConfig& config) {
  double total = config.name_weight + config.value_weight;
  if (total <= 0.0) return 0.0;
  return (config.name_weight * NameSimilarity(a, b) +
          config.value_weight * ValueSimilarity(a, b)) /
         total;
}

std::vector<AttrEdge> BuildCandidateEdges(const AttributeStatistics& stats,
                                          const AttrMatchConfig& config) {
  const std::vector<AttrProfile>& profiles = stats.profiles();
  std::vector<AttrEdge> edges;
  for (size_t i = 0; i < profiles.size(); ++i) {
    for (size_t j = i + 1; j < profiles.size(); ++j) {
      if (profiles[i].id.source == profiles[j].id.source) continue;
      double score = CombinedSimilarity(profiles[i], profiles[j], config);
      if (score >= config.min_score) {
        edges.push_back(AttrEdge{i, j, score});
      }
    }
  }
  return edges;
}

}  // namespace bdi::schema
