#ifndef BDI_SCHEMA_PROBABILISTIC_SCHEMA_H_
#define BDI_SCHEMA_PROBABILISTIC_SCHEMA_H_

#include <cstdint>
#include <vector>

#include "bdi/schema/mediated_schema.h"

namespace bdi::schema {

/// One possible mediated schema with its probability.
struct WeightedSchema {
  MediatedSchema schema;
  double probability = 0.0;
};

struct ProbabilisticSchemaConfig {
  /// Edges scoring >= certain_threshold always hold; edges scoring <
  /// possible_threshold never hold; in between, an edge holds with
  /// probability linear in its score (pay-as-you-go uncertainty).
  double certain_threshold = 0.80;
  double possible_threshold = 0.60;
  /// Enumerate exhaustively while 2^#ambiguous <= 2^max_enumerate_bits;
  /// otherwise Monte Carlo with `num_samples` worlds.
  int max_enumerate_bits = 12;
  int num_samples = 256;
  /// Keep at most this many distinct worlds (highest probability first).
  size_t max_worlds = 64;
  uint64_t seed = 7;
  ClusterMethod method = ClusterMethod::kCenter;
};

/// A probabilistic mediated schema (Das Sarma et al., SIGMOD'08): a
/// distribution over possible attribute clusterings induced by ambiguous
/// correspondences.
class ProbabilisticMediatedSchema {
 public:
  /// Builds the distribution from scored candidate edges.
  static ProbabilisticMediatedSchema Build(
      const AttributeStatistics& stats, const std::vector<AttrEdge>& edges,
      const ProbabilisticSchemaConfig& config);

  const std::vector<WeightedSchema>& worlds() const { return worlds_; }

  /// Probability mass of worlds placing `a` and `b` in the same cluster.
  double CorrespondenceProbability(const SourceAttr& a,
                                   const SourceAttr& b) const;

  /// Deterministic consensus schema: clusters attributes whose pairwise
  /// correspondence probability is >= tau (transitively).
  MediatedSchema Consensus(const AttributeStatistics& stats,
                           double tau) const;

 private:
  std::vector<WeightedSchema> worlds_;
};

}  // namespace bdi::schema

#endif  // BDI_SCHEMA_PROBABILISTIC_SCHEMA_H_
