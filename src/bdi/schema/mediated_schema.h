#ifndef BDI_SCHEMA_MEDIATED_SCHEMA_H_
#define BDI_SCHEMA_MEDIATED_SCHEMA_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdi/schema/attribute_stats.h"
#include "bdi/schema/matchers.h"

namespace bdi::schema {

/// A deterministic mediated schema: a partition of the source attributes
/// into semantic clusters, built bottom-up (no global schema given in
/// advance).
struct MediatedSchema {
  /// Each cluster lists member source attributes.
  std::vector<std::vector<SourceAttr>> clusters;
  /// Cluster index per member.
  std::unordered_map<SourceAttr, int, SourceAttrHash> cluster_of;
  /// Display name per cluster (the most common normalized member name).
  std::vector<std::string> cluster_names;

  /// -1 when the attribute is not in any cluster.
  int ClusterOf(const SourceAttr& sa) const {
    auto it = cluster_of.find(sa);
    return it == cluster_of.end() ? -1 : it->second;
  }
};

enum class ClusterMethod {
  /// Union attributes connected by any edge >= threshold (transitive).
  kConnectedComponents,
  /// Greedy star/center clustering: highest-degree-weight attributes become
  /// centers; others join their best center. Resists chaining.
  kCenter,
};

struct MediatedSchemaConfig {
  double threshold = 0.70;
  ClusterMethod method = ClusterMethod::kCenter;
};

/// Clusters source attributes given candidate edges. Attributes with no
/// qualifying edge become singleton clusters.
MediatedSchema BuildMediatedSchema(const AttributeStatistics& stats,
                                   const std::vector<AttrEdge>& edges,
                                   const MediatedSchemaConfig& config);

/// Pairwise precision/recall/F1 of a predicted attribute clustering against
/// ground-truth canonical assignments (two attributes "match" when mapped
/// to the same canonical attribute). Attributes missing from `truth_canonical`
/// (e.g. noise attributes) generate no true pairs; predicted pairs touching
/// them count against precision.
struct SchemaQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_pairs = 0;
  size_t predicted_pairs = 0;
  size_t correct_pairs = 0;
};

SchemaQuality EvaluateSchema(
    const MediatedSchema& schema,
    const std::map<SourceAttr, int>& truth_canonical);

}  // namespace bdi::schema

#endif  // BDI_SCHEMA_MEDIATED_SCHEMA_H_
