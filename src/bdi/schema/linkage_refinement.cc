#include "bdi/schema/linkage_refinement.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>

namespace bdi::schema {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

LinkageRefinementReport RefineSchemaWithLinkage(
    const Dataset& dataset, const AttributeStatistics& stats,
    const MediatedSchema& schema, const ValueNormalizer& normalizer,
    const std::vector<EntityId>& entity_of_record,
    const LinkageRefinementConfig& config) {
  LinkageRefinementReport report;
  size_t num_clusters = schema.clusters.size();

  // 1. Per schema cluster: the normalized values it publishes per linked
  // entity (capped small sets; one entity rarely has many variants).
  std::vector<std::unordered_map<EntityId, std::set<std::string>>> values(
      num_clusters);
  for (const Record& record : dataset.records()) {
    EntityId entity = entity_of_record[record.idx];
    for (const Field& field : record.fields) {
      SourceAttr sa{record.source, field.attr};
      int cluster = schema.ClusterOf(sa);
      if (cluster < 0) continue;
      std::set<std::string>& slot =
          values[static_cast<size_t>(cluster)][entity];
      if (slot.size() < 4) {
        slot.insert(normalizer.Normalize(sa, field.value));
      }
    }
  }

  // 2. Cluster type (majority numeric of members).
  std::vector<bool> numeric(num_clusters, false);
  for (size_t c = 0; c < num_clusters; ++c) {
    size_t numeric_members = 0;
    for (const SourceAttr& sa : schema.clusters[c]) {
      const AttrProfile* profile = stats.Find(sa);
      if (profile != nullptr && profile->IsNumeric()) ++numeric_members;
    }
    numeric[c] = numeric_members * 2 >= schema.clusters[c].size();
  }

  // 3. Pairwise agreement on shared entities.
  UnionFind uf(num_clusters);
  for (size_t a = 0; a < num_clusters; ++a) {
    for (size_t b = a + 1; b < num_clusters; ++b) {
      if (config.respect_types && numeric[a] != numeric[b]) continue;
      const auto& small = values[a].size() <= values[b].size() ? values[a]
                                                               : values[b];
      const auto& large = values[a].size() <= values[b].size() ? values[b]
                                                               : values[a];
      size_t common = 0, agree = 0;
      for (const auto& [entity, value_set] : small) {
        auto it = large.find(entity);
        if (it == large.end()) continue;
        ++common;
        for (const std::string& v : value_set) {
          if (it->second.count(v) > 0) {
            ++agree;
            break;
          }
        }
      }
      ++report.pairs_considered;
      if (common >= config.min_common_entities &&
          static_cast<double>(agree) >=
              config.min_agreement * static_cast<double>(common)) {
        if (uf.Find(a) != uf.Find(b)) {
          uf.Union(a, b);
          ++report.merges;
        }
      }
    }
  }

  // 4. Rebuild the mediated schema from the merged components.
  std::map<size_t, std::vector<SourceAttr>> merged;
  for (size_t c = 0; c < num_clusters; ++c) {
    auto& members = merged[uf.Find(c)];
    members.insert(members.end(), schema.clusters[c].begin(),
                   schema.clusters[c].end());
  }
  for (auto& [root, members] : merged) {
    std::sort(members.begin(), members.end());
    int cluster = static_cast<int>(report.schema.clusters.size());
    for (const SourceAttr& sa : members) {
      report.schema.cluster_of[sa] = cluster;
    }
    // Majority member name.
    std::map<std::string, size_t> names;
    for (const SourceAttr& sa : members) {
      const AttrProfile* profile = stats.Find(sa);
      if (profile != nullptr) ++names[profile->normalized_name];
    }
    std::string best_name;
    size_t best = 0;
    for (const auto& [name, count] : names) {
      if (count > best) {
        best = count;
        best_name = name;
      }
    }
    report.schema.cluster_names.push_back(best_name);
    report.schema.clusters.push_back(std::move(members));
  }
  return report;
}

}  // namespace bdi::schema
