#ifndef BDI_SCHEMA_ATTRIBUTE_STATS_H_
#define BDI_SCHEMA_ATTRIBUTE_STATS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "bdi/model/dataset.h"
#include "bdi/model/types.h"

namespace bdi::schema {

/// Per-(source, attribute) profile: everything the alignment matchers need,
/// computed in one pass over the corpus.
struct AttrProfile {
  SourceAttr id;
  std::string raw_name;
  std::string normalized_name;  ///< lowercased alphanumeric form

  size_t num_values = 0;         ///< records of the source carrying the attr
  size_t num_distinct = 0;

  /// Up to `kMaxSampleValues` distinct lowercased values, sorted.
  std::vector<std::string> sample_values;

  /// Fraction of values with a parseable leading number.
  double numeric_fraction = 0.0;
  /// Statistics over the parsed numeric prefixes (valid when
  /// numeric_fraction > 0).
  double numeric_mean = 0.0;
  double numeric_stddev = 0.0;
  double numeric_median = 0.0;
  /// Most frequent non-numeric suffix among numeric values ("cm"), possibly
  /// empty.
  std::string dominant_unit;

  bool IsNumeric() const { return numeric_fraction >= 0.5; }
};

/// Corpus-wide attribute statistics: one profile per SourceAttr plus the
/// attribute-name frequency table used for the variety characterization
/// (E1: the long tail of attribute names).
class AttributeStatistics {
 public:
  static constexpr size_t kMaxSampleValues = 64;

  /// Scans the dataset once and builds all profiles.
  static AttributeStatistics Compute(const Dataset& dataset);

  const std::vector<AttrProfile>& profiles() const { return profiles_; }

  /// Profile lookup; returns nullptr if the SourceAttr never appears.
  const AttrProfile* Find(const SourceAttr& sa) const;

  /// Number of distinct sources using each normalized attribute name.
  const std::unordered_map<std::string, size_t>& name_source_counts() const {
    return name_source_counts_;
  }

 private:
  std::vector<AttrProfile> profiles_;
  std::unordered_map<SourceAttr, size_t, SourceAttrHash> index_;
  std::unordered_map<std::string, size_t> name_source_counts_;
};

}  // namespace bdi::schema

#endif  // BDI_SCHEMA_ATTRIBUTE_STATS_H_
