#include "bdi/schema/probabilistic_schema.h"

#include <algorithm>
#include <map>
#include <string>

#include "bdi/common/logging.h"
#include "bdi/common/random.h"

namespace bdi::schema {

namespace {

/// Canonical text signature of a clustering, for world deduplication.
std::string ClusterSignature(const MediatedSchema& schema) {
  std::vector<std::string> cluster_keys;
  for (const auto& members : schema.clusters) {
    std::string key;
    for (const SourceAttr& sa : members) {
      key += std::to_string(sa.source) + ":" + std::to_string(sa.attr) + ",";
    }
    cluster_keys.push_back(std::move(key));
  }
  std::sort(cluster_keys.begin(), cluster_keys.end());
  std::string signature;
  for (const std::string& k : cluster_keys) {
    signature += k;
    signature += '|';
  }
  return signature;
}

}  // namespace

ProbabilisticMediatedSchema ProbabilisticMediatedSchema::Build(
    const AttributeStatistics& stats, const std::vector<AttrEdge>& edges,
    const ProbabilisticSchemaConfig& config) {
  BDI_CHECK(config.certain_threshold > config.possible_threshold);
  std::vector<AttrEdge> certain;
  std::vector<AttrEdge> ambiguous;
  std::vector<double> edge_prob;
  for (const AttrEdge& e : edges) {
    if (e.score >= config.certain_threshold) {
      certain.push_back(e);
    } else if (e.score >= config.possible_threshold) {
      ambiguous.push_back(e);
      edge_prob.push_back(
          (e.score - config.possible_threshold) /
          (config.certain_threshold - config.possible_threshold));
    }
  }

  ProbabilisticMediatedSchema result;
  std::map<std::string, std::pair<size_t, double>> dedup;  // sig -> (idx, p)

  auto add_world = [&](const std::vector<bool>& included, double weight) {
    std::vector<AttrEdge> world_edges = certain;
    for (size_t i = 0; i < ambiguous.size(); ++i) {
      if (included[i]) world_edges.push_back(ambiguous[i]);
    }
    MediatedSchemaConfig msc;
    msc.threshold = 0.0;  // edges are pre-filtered
    msc.method = config.method;
    MediatedSchema schema = BuildMediatedSchema(stats, world_edges, msc);
    std::string signature = ClusterSignature(schema);
    auto it = dedup.find(signature);
    if (it != dedup.end()) {
      result.worlds_[it->second.first].probability += weight;
    } else {
      dedup[signature] = {result.worlds_.size(), weight};
      result.worlds_.push_back(WeightedSchema{std::move(schema), weight});
    }
  };

  size_t m = ambiguous.size();
  if (m <= static_cast<size_t>(config.max_enumerate_bits)) {
    size_t combos = size_t{1} << m;
    for (size_t mask = 0; mask < combos; ++mask) {
      std::vector<bool> included(m);
      double weight = 1.0;
      for (size_t i = 0; i < m; ++i) {
        bool on = (mask >> i) & 1;
        included[i] = on;
        weight *= on ? edge_prob[i] : (1.0 - edge_prob[i]);
      }
      if (weight <= 0.0) continue;
      add_world(included, weight);
    }
  } else {
    Rng rng(config.seed);
    double weight = 1.0 / static_cast<double>(config.num_samples);
    for (int s = 0; s < config.num_samples; ++s) {
      std::vector<bool> included(m);
      for (size_t i = 0; i < m; ++i) {
        included[i] = rng.Bernoulli(edge_prob[i]);
      }
      add_world(included, weight);
    }
  }

  std::sort(result.worlds_.begin(), result.worlds_.end(),
            [](const WeightedSchema& a, const WeightedSchema& b) {
              return a.probability > b.probability;
            });
  if (result.worlds_.size() > config.max_worlds) {
    result.worlds_.resize(config.max_worlds);
  }
  double total = 0.0;
  for (const WeightedSchema& w : result.worlds_) total += w.probability;
  if (total > 0.0) {
    for (WeightedSchema& w : result.worlds_) w.probability /= total;
  }
  return result;
}

double ProbabilisticMediatedSchema::CorrespondenceProbability(
    const SourceAttr& a, const SourceAttr& b) const {
  double p = 0.0;
  for (const WeightedSchema& w : worlds_) {
    int ca = w.schema.ClusterOf(a);
    if (ca != -1 && ca == w.schema.ClusterOf(b)) {
      p += w.probability;
    }
  }
  return p;
}

MediatedSchema ProbabilisticMediatedSchema::Consensus(
    const AttributeStatistics& stats, double tau) const {
  const std::vector<AttrProfile>& profiles = stats.profiles();
  std::vector<AttrEdge> consensus_edges;
  for (size_t i = 0; i < profiles.size(); ++i) {
    for (size_t j = i + 1; j < profiles.size(); ++j) {
      double p = CorrespondenceProbability(profiles[i].id, profiles[j].id);
      if (p >= tau) {
        consensus_edges.push_back(AttrEdge{i, j, p});
      }
    }
  }
  MediatedSchemaConfig msc;
  msc.threshold = tau;
  return BuildMediatedSchema(stats, consensus_edges, msc);
}

}  // namespace bdi::schema
