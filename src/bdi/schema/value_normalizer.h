#ifndef BDI_SCHEMA_VALUE_NORMALIZER_H_
#define BDI_SCHEMA_VALUE_NORMALIZER_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "bdi/schema/attribute_stats.h"
#include "bdi/schema/mediated_schema.h"

namespace bdi::schema {

/// Learns per-attribute value transformations within each mediated-schema
/// cluster and applies them, so downstream fusion compares values in one
/// representation. This is the "identify value transformations" half of
/// schema alignment:
///
///  * string attributes are lowercased and whitespace-normalized;
///  * numeric attributes are rescaled to the cluster's reference attribute
///    via the ratio of value medians (detecting cm-vs-inch style unit
///    differences without any unit dictionary), with the estimated ratio
///    snapped to well-known conversion constants when close.
class ValueNormalizer {
 public:
  /// Learns scales for every attribute that appears in `schema`.
  static ValueNormalizer Fit(const AttributeStatistics& stats,
                             const MediatedSchema& schema);

  /// Canonical form of `raw` for the given source attribute. Attributes
  /// never seen in Fit get the string normalization only.
  std::string Normalize(const SourceAttr& sa, std::string_view raw) const;

  /// Learned multiplicative scale (1.0 when not numeric or unknown).
  double ScaleOf(const SourceAttr& sa) const;

  /// Whether the attribute was classified numeric during Fit.
  bool IsNumeric(const SourceAttr& sa) const;

 private:
  struct Entry {
    bool numeric = false;
    double scale = 1.0;
  };
  std::unordered_map<SourceAttr, Entry, SourceAttrHash> entries_;
};

}  // namespace bdi::schema

#endif  // BDI_SCHEMA_VALUE_NORMALIZER_H_
