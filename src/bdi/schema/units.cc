#include "bdi/schema/units.h"

#include <cmath>

namespace bdi::schema {

namespace {

/// Best snap candidate among {1} ∪ factors ∪ 1/factors by log-distance;
/// returns `scale` unchanged when nothing is within `tolerance`.
double BestSnap(double scale, double tolerance, const double* factors,
                size_t num_factors) {
  if (scale <= 0.0) return 1.0;
  double best = scale;
  double best_distance = std::log(1.0 + tolerance);
  auto consider = [&](double candidate) {
    double distance = std::abs(std::log(scale / candidate));
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  };
  consider(1.0);
  for (size_t i = 0; i < num_factors; ++i) {
    consider(factors[i]);
    consider(1.0 / factors[i]);
  }
  return best;
}

}  // namespace

double SnapScale(double scale, double tolerance) {
  return BestSnap(scale, tolerance, kKnownUnitFactors,
                  sizeof(kKnownUnitFactors) / sizeof(double));
}

bool IsMeasurementUnitConversion(double scale) {
  if (scale <= 0.0) return false;
  constexpr double kMeasurementFactors[] = {2.54, 28.35, 0.4536, 0.3048,
                                            0.3937};
  for (double f : kMeasurementFactors) {
    if (std::abs(scale / f - 1.0) < 0.08) return true;
    if (std::abs(scale * f - 1.0) < 0.08) return true;
  }
  return false;
}

bool IsKnownUnitConversion(double scale) {
  if (scale <= 0.0) return false;
  for (double f : kKnownUnitFactors) {
    if (std::abs(scale / f - 1.0) < 0.08) return true;
    if (std::abs(scale * f - 1.0) < 0.08) return true;
  }
  return false;
}

}  // namespace bdi::schema
