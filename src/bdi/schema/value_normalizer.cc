#include "bdi/schema/value_normalizer.h"

#include <algorithm>
#include <cmath>

#include "bdi/common/string_util.h"
#include "bdi/schema/units.h"

namespace bdi::schema {

namespace {

std::string StringNormalize(std::string_view raw) {
  return ToLower(NormalizeWhitespace(raw));
}

}  // namespace

ValueNormalizer ValueNormalizer::Fit(const AttributeStatistics& stats,
                                     const MediatedSchema& schema) {
  ValueNormalizer normalizer;
  for (const auto& members : schema.clusters) {
    // Gather numeric members and pick the best-populated as reference.
    const AttrProfile* reference = nullptr;
    size_t numeric_members = 0;
    for (const SourceAttr& sa : members) {
      const AttrProfile* profile = stats.Find(sa);
      if (profile == nullptr) continue;
      if (profile->IsNumeric()) {
        ++numeric_members;
        if (reference == nullptr ||
            profile->num_values > reference->num_values) {
          reference = profile;
        }
      }
    }
    bool cluster_numeric = numeric_members * 2 >= members.size() &&
                           reference != nullptr &&
                           reference->numeric_median != 0.0;

    // Members fall into "unit classes" by their ratio to the reference.
    // Per-member snapping is unreliable (median ratios carry sampling
    // noise that can straddle two nearby conversion constants), so first
    // cluster the raw ratios in log space, then snap each class center
    // once. Normalization targets the class carrying the most values (the
    // dominant published unit) — otherwise one big oz-publishing source
    // would drag a g-dominated cluster into ounces.
    struct MemberRatio {
      const AttrProfile* profile;
      double log_ratio;
      double weight;
    };
    std::vector<MemberRatio> ratios;
    if (cluster_numeric) {
      for (const SourceAttr& sa : members) {
        const AttrProfile* profile = stats.Find(sa);
        if (profile == nullptr || !profile->IsNumeric() ||
            profile->numeric_median == 0.0 ||
            reference->numeric_median / profile->numeric_median <= 0.0) {
          continue;
        }
        ratios.push_back(MemberRatio{
            profile,
            std::log(reference->numeric_median / profile->numeric_median),
            static_cast<double>(profile->num_values)});
      }
    }
    std::sort(ratios.begin(), ratios.end(),
              [](const MemberRatio& a, const MemberRatio& b) {
                return a.log_ratio < b.log_ratio;
              });
    // Single-linkage classes: adjacent ratios within 12% belong together.
    constexpr double kClassGap = 0.12;  // in log space
    std::map<const AttrProfile*, double> scale_to_reference;
    double canonical_center = 1.0;
    double best_weight = -1.0;
    size_t begin = 0;
    while (begin < ratios.size()) {
      size_t end = begin + 1;
      while (end < ratios.size() &&
             ratios[end].log_ratio - ratios[end - 1].log_ratio < kClassGap) {
        ++end;
      }
      double weight_total = 0.0, log_sum = 0.0;
      for (size_t i = begin; i < end; ++i) {
        weight_total += ratios[i].weight;
        log_sum += ratios[i].log_ratio * ratios[i].weight;
      }
      double center = SnapScale(std::exp(log_sum / weight_total), 0.15);
      // Only unit conversions are trustworthy transformations; an
      // arbitrary median ratio (1.3x, 5x, ...) is far more likely sampling
      // noise between small samples than a real representation change.
      if (center != 1.0 && !IsKnownUnitConversion(center)) {
        center = 1.0;
      }
      for (size_t i = begin; i < end; ++i) {
        scale_to_reference[ratios[i].profile] = center;
      }
      if (weight_total > best_weight) {
        best_weight = weight_total;
        canonical_center = center;
      }
      begin = end;
    }

    for (const SourceAttr& sa : members) {
      const AttrProfile* profile = stats.Find(sa);
      Entry entry;
      auto it = scale_to_reference.find(profile);
      if (cluster_numeric && it != scale_to_reference.end()) {
        entry.numeric = true;
        // member -> reference units (class center), then reference ->
        // dominant-class units (1 / canonical center).
        entry.scale = SnapScale(it->second / canonical_center, 0.10);
      }
      normalizer.entries_[sa] = entry;
    }
  }
  return normalizer;
}

std::string ValueNormalizer::Normalize(const SourceAttr& sa,
                                       std::string_view raw) const {
  auto it = entries_.find(sa);
  if (it == entries_.end() || !it->second.numeric) {
    return StringNormalize(raw);
  }
  double value = 0.0;
  if (!ParseLeadingDouble(raw, &value, nullptr)) {
    return StringNormalize(raw);
  }
  return FormatDouble(value * it->second.scale, 2);
}

double ValueNormalizer::ScaleOf(const SourceAttr& sa) const {
  auto it = entries_.find(sa);
  return it == entries_.end() ? 1.0 : it->second.scale;
}

bool ValueNormalizer::IsNumeric(const SourceAttr& sa) const {
  auto it = entries_.find(sa);
  return it != entries_.end() && it->second.numeric;
}

}  // namespace bdi::schema
