#include "bdi/schema/attribute_stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "bdi/common/string_util.h"

namespace bdi::schema {

namespace {

struct Accumulator {
  std::string raw_name;
  size_t num_values = 0;
  std::set<std::string> distinct;          // capped sample of lowercased
  size_t num_distinct_total = 0;
  std::set<std::string> all_seen;          // for distinct counting (capped)
  size_t numeric_count = 0;
  std::vector<double> numerics;
  std::map<std::string, size_t> unit_counts;
};

}  // namespace

AttributeStatistics AttributeStatistics::Compute(const Dataset& dataset) {
  std::unordered_map<SourceAttr, Accumulator, SourceAttrHash> accs;
  for (const Record& record : dataset.records()) {
    for (const Field& field : record.fields) {
      SourceAttr sa{record.source, field.attr};
      Accumulator& acc = accs[sa];
      if (acc.raw_name.empty()) {
        acc.raw_name = dataset.attr_name(field.attr);
      }
      ++acc.num_values;
      std::string lowered = ToLower(NormalizeWhitespace(field.value));
      if (acc.all_seen.size() < 4096) {
        if (acc.all_seen.insert(lowered).second) {
          ++acc.num_distinct_total;
        }
      }
      if (acc.distinct.size() < kMaxSampleValues) {
        acc.distinct.insert(lowered);
      }
      double value = 0.0;
      std::string unit;
      if (ParseLeadingDouble(lowered, &value, &unit)) {
        ++acc.numeric_count;
        acc.numerics.push_back(value);
        ++acc.unit_counts[unit];
      }
    }
  }

  AttributeStatistics stats;
  stats.profiles_.reserve(accs.size());
  // Deterministic ordering.
  std::vector<SourceAttr> keys;
  keys.reserve(accs.size());
  for (const auto& [sa, acc] : accs) keys.push_back(sa);
  std::sort(keys.begin(), keys.end());

  std::unordered_map<std::string, std::set<SourceId>> name_sources;
  for (const SourceAttr& sa : keys) {
    Accumulator& acc = accs[sa];
    AttrProfile profile;
    profile.id = sa;
    profile.raw_name = acc.raw_name;
    profile.normalized_name = NormalizeAlnum(acc.raw_name);
    profile.num_values = acc.num_values;
    profile.num_distinct = acc.num_distinct_total;
    profile.sample_values.assign(acc.distinct.begin(), acc.distinct.end());
    profile.numeric_fraction =
        acc.num_values == 0
            ? 0.0
            : static_cast<double>(acc.numeric_count) /
                  static_cast<double>(acc.num_values);
    if (!acc.numerics.empty()) {
      double sum = 0.0;
      for (double v : acc.numerics) sum += v;
      profile.numeric_mean = sum / static_cast<double>(acc.numerics.size());
      double var = 0.0;
      for (double v : acc.numerics) {
        var += (v - profile.numeric_mean) * (v - profile.numeric_mean);
      }
      profile.numeric_stddev =
          std::sqrt(var / static_cast<double>(acc.numerics.size()));
      std::nth_element(acc.numerics.begin(),
                       acc.numerics.begin() + acc.numerics.size() / 2,
                       acc.numerics.end());
      profile.numeric_median = acc.numerics[acc.numerics.size() / 2];
      size_t best = 0;
      for (const auto& [unit, count] : acc.unit_counts) {
        if (count > best) {
          best = count;
          profile.dominant_unit = unit;
        }
      }
    }
    name_sources[profile.normalized_name].insert(sa.source);
    stats.index_[sa] = stats.profiles_.size();
    stats.profiles_.push_back(std::move(profile));
  }
  for (const auto& [name, sources] : name_sources) {
    stats.name_source_counts_[name] = sources.size();
  }
  return stats;
}

const AttrProfile* AttributeStatistics::Find(const SourceAttr& sa) const {
  auto it = index_.find(sa);
  if (it == index_.end()) return nullptr;
  return &profiles_[it->second];
}

}  // namespace bdi::schema
