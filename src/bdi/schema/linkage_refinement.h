#ifndef BDI_SCHEMA_LINKAGE_REFINEMENT_H_
#define BDI_SCHEMA_LINKAGE_REFINEMENT_H_

#include <vector>

#include "bdi/schema/mediated_schema.h"
#include "bdi/schema/value_normalizer.h"

namespace bdi::schema {

/// The pipeline feedback loop the tutorial advocates: once records are
/// linked, two attributes that keep publishing the *same value for the
/// same entity* are almost certainly the same attribute — even when their
/// names share nothing (synonym skeletons like "wght", compacted names,
/// foreign labels). This pass merges mediated-schema clusters whose
/// members systematically agree on linked entities.
struct LinkageRefinementConfig {
  /// Minimum entities on which two clusters must co-publish a value
  /// before they are merge candidates.
  size_t min_common_entities = 5;
  /// Minimum fraction of those co-published values that must agree.
  double min_agreement = 0.6;
  /// Never merge a numeric cluster with a string cluster.
  bool respect_types = true;
};

struct LinkageRefinementReport {
  MediatedSchema schema;
  size_t merges = 0;
  size_t pairs_considered = 0;
};

/// Returns a refined schema. `entity_of_record` is the linkage output
/// over `dataset` (record -> linked entity); `normalizer` supplies the
/// value canonicalization learned for the input `schema`.
LinkageRefinementReport RefineSchemaWithLinkage(
    const Dataset& dataset, const AttributeStatistics& stats,
    const MediatedSchema& schema, const ValueNormalizer& normalizer,
    const std::vector<EntityId>& entity_of_record,
    const LinkageRefinementConfig& config = {});

}  // namespace bdi::schema

#endif  // BDI_SCHEMA_LINKAGE_REFINEMENT_H_
