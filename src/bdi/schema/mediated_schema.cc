#include "bdi/schema/mediated_schema.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace bdi::schema {

namespace {

/// Plain union-find over profile indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

std::vector<int> ConnectedComponentsLabels(size_t n,
                                           const std::vector<AttrEdge>& edges,
                                           double threshold) {
  UnionFind uf(n);
  for (const AttrEdge& e : edges) {
    if (e.score >= threshold) uf.Union(e.a, e.b);
  }
  std::vector<int> label(n, -1);
  std::map<size_t, int> root_to_label;
  for (size_t i = 0; i < n; ++i) {
    size_t root = uf.Find(i);
    auto it =
        root_to_label.emplace(root, static_cast<int>(root_to_label.size()))
            .first;
    label[i] = it->second;
  }
  return label;
}

std::vector<int> CenterLabels(size_t n, const std::vector<AttrEdge>& edges,
                              double threshold) {
  // Order attributes by total incident edge weight (strongest first); scan:
  // an unassigned attribute becomes a center; neighbors above threshold
  // join the center they see first (i.e. the strongest center order-wise).
  std::vector<double> strength(n, 0.0);
  std::vector<std::vector<std::pair<size_t, double>>> adjacency(n);
  for (const AttrEdge& e : edges) {
    if (e.score < threshold) continue;
    strength[e.a] += e.score;
    strength[e.b] += e.score;
    adjacency[e.a].emplace_back(e.b, e.score);
    adjacency[e.b].emplace_back(e.a, e.score);
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    if (strength[x] != strength[y]) return strength[x] > strength[y];
    return x < y;
  });
  std::vector<int> label(n, -1);
  int next = 0;
  for (size_t i : order) {
    if (label[i] != -1) continue;
    int cluster = next++;
    label[i] = cluster;
    for (const auto& [j, score] : adjacency[i]) {
      if (label[j] == -1) label[j] = cluster;
    }
  }
  return label;
}

}  // namespace

MediatedSchema BuildMediatedSchema(const AttributeStatistics& stats,
                                   const std::vector<AttrEdge>& edges,
                                   const MediatedSchemaConfig& config) {
  const std::vector<AttrProfile>& profiles = stats.profiles();
  size_t n = profiles.size();
  std::vector<int> label =
      config.method == ClusterMethod::kConnectedComponents
          ? ConnectedComponentsLabels(n, edges, config.threshold)
          : CenterLabels(n, edges, config.threshold);

  int num_clusters = 0;
  for (int l : label) num_clusters = std::max(num_clusters, l + 1);

  MediatedSchema schema;
  schema.clusters.resize(num_clusters);
  for (size_t i = 0; i < n; ++i) {
    schema.clusters[label[i]].push_back(profiles[i].id);
    schema.cluster_of[profiles[i].id] = label[i];
  }
  // Drop empty clusters (center labels are dense, cc labels are dense; this
  // is defensive) and name each cluster by its most common member name.
  std::vector<std::vector<SourceAttr>> compact;
  std::unordered_map<SourceAttr, int, SourceAttrHash> compact_of;
  std::vector<std::string> names;
  for (auto& members : schema.clusters) {
    if (members.empty()) continue;
    std::map<std::string, size_t> name_counts;
    for (const SourceAttr& sa : members) {
      const AttrProfile* profile = stats.Find(sa);
      if (profile != nullptr) ++name_counts[profile->normalized_name];
    }
    std::string best_name;
    size_t best = 0;
    for (const auto& [name, count] : name_counts) {
      if (count > best) {
        best = count;
        best_name = name;
      }
    }
    int cluster = static_cast<int>(compact.size());
    for (const SourceAttr& sa : members) compact_of[sa] = cluster;
    compact.push_back(std::move(members));
    names.push_back(best_name);
  }
  schema.clusters = std::move(compact);
  schema.cluster_of = std::move(compact_of);
  schema.cluster_names = std::move(names);
  return schema;
}

SchemaQuality EvaluateSchema(
    const MediatedSchema& schema,
    const std::map<SourceAttr, int>& truth_canonical) {
  SchemaQuality quality;
  // Collect the full universe: attributes in the schema or in the truth.
  std::vector<SourceAttr> universe;
  for (const auto& members : schema.clusters) {
    for (const SourceAttr& sa : members) universe.push_back(sa);
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());

  for (size_t i = 0; i < universe.size(); ++i) {
    for (size_t j = i + 1; j < universe.size(); ++j) {
      const SourceAttr& a = universe[i];
      const SourceAttr& b = universe[j];
      int ca = schema.ClusterOf(a);
      int cb = schema.ClusterOf(b);
      bool predicted = ca != -1 && ca == cb;
      auto ta = truth_canonical.find(a);
      auto tb = truth_canonical.find(b);
      bool actual = ta != truth_canonical.end() &&
                    tb != truth_canonical.end() &&
                    ta->second == tb->second;
      if (predicted) ++quality.predicted_pairs;
      if (actual) ++quality.true_pairs;
      if (predicted && actual) ++quality.correct_pairs;
    }
  }
  quality.precision =
      quality.predicted_pairs == 0
          ? 0.0
          : static_cast<double>(quality.correct_pairs) /
                static_cast<double>(quality.predicted_pairs);
  quality.recall = quality.true_pairs == 0
                       ? 0.0
                       : static_cast<double>(quality.correct_pairs) /
                             static_cast<double>(quality.true_pairs);
  quality.f1 = quality.precision + quality.recall == 0.0
                   ? 0.0
                   : 2.0 * quality.precision * quality.recall /
                         (quality.precision + quality.recall);
  return quality;
}

}  // namespace bdi::schema
