#ifndef BDI_CORE_DIFF_H_
#define BDI_CORE_DIFF_H_

#include <string>
#include <vector>

#include "bdi/core/integrator.h"

namespace bdi::core {

/// One change between two integrated views.
struct IntegrationChange {
  enum class Kind {
    kEntityAppeared,
    kEntityDisappeared,
    kValueChanged,
    kValueAppeared,
    kValueDisappeared,
  };
  Kind kind;
  std::string entity_name;  ///< representative display name
  std::string attribute;    ///< empty for entity-level changes
  std::string old_value;
  std::string new_value;
};

struct IntegrationDiff {
  std::vector<IntegrationChange> changes;
  size_t entities_matched = 0;

  size_t CountKind(IntegrationChange::Kind kind) const;
};

/// Compares two integration runs (e.g. successive monthly snapshots) and
/// emits a change feed. Entity identity across runs is NOT cluster ids
/// (those are run-local): entities are matched by the identifier tokens of
/// their records, falling back to exact representative-name match;
/// attributes are matched by mediated-cluster name. Value comparison uses
/// the fused values.
IntegrationDiff DiffIntegrations(const IntegrationReport& old_report,
                                 const Dataset& old_dataset,
                                 const IntegrationReport& new_report,
                                 const Dataset& new_dataset);

}  // namespace bdi::core

#endif  // BDI_CORE_DIFF_H_
