#include "bdi/core/query.h"

#include <algorithm>

#include "bdi/common/logging.h"
#include "bdi/common/string_util.h"
#include "bdi/text/similarity.h"
#include "bdi/text/tokenizer.h"

namespace bdi::core {

namespace {

int64_t ItemKey(EntityId entity, int attr) {
  return (static_cast<int64_t>(entity) << 24) ^ static_cast<int64_t>(attr);
}

}  // namespace

QueryEngine::QueryEngine(const IntegrationReport* report,
                         const Dataset* dataset)
    : report_(report), dataset_(dataset) {
  BDI_CHECK(report_ != nullptr && dataset_ != nullptr);
  size_t clusters = report_->linkage.clusters.num_clusters;
  cluster_text_.resize(clusters);
  for (const Record& record : dataset_->records()) {
    EntityId cluster = report_->linkage.clusters.label_of_record[record.idx];
    if (record.fields.empty()) continue;
    const std::string& name = record.fields[0].value;
    if (name.size() > cluster_text_[cluster].size()) {
      cluster_text_[cluster] = name;
    }
  }
  cluster_tokens_.resize(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    cluster_tokens_[c] = text::TokenSet(cluster_text_[c]);
  }
  for (size_t i = 0; i < report_->claims.items().size(); ++i) {
    const fusion::DataItem& item = report_->claims.items()[i];
    item_of_[ItemKey(item.entity, item.attr)] = i;
  }
}

std::vector<std::pair<EntityId, double>> QueryEngine::FindEntities(
    const std::string& keywords, size_t k) const {
  std::vector<std::string> query = text::TokenSet(keywords);
  std::vector<std::pair<EntityId, double>> scored;
  for (size_t c = 0; c < cluster_tokens_.size(); ++c) {
    if (cluster_tokens_[c].empty()) continue;
    // Containment of the query in the cluster text plus a fuzzy component.
    double overlap = text::OverlapCoefficient(query, cluster_tokens_[c]);
    double fuzzy =
        text::MongeElkanSimilarity(keywords, cluster_text_[c]);
    double score = 0.7 * overlap + 0.3 * fuzzy;
    if (score > 0.0) {
      scored.emplace_back(static_cast<EntityId>(c), score);
    }
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

std::pair<int, double> QueryEngine::FindAttribute(
    const std::string& keywords) const {
  std::string normalized = NormalizeAlnum(keywords);
  int best = -1;
  double best_score = 0.0;
  for (size_t c = 0; c < report_->schema.cluster_names.size(); ++c) {
    const std::string& name = report_->schema.cluster_names[c];
    if (name.empty()) continue;
    double score = text::JaroWinklerSimilarity(normalized, name);
    // Exact containment of the query in the cluster name or vice versa is
    // strong (e.g. "weight" vs "itemweight").
    if (name.find(normalized) != std::string::npos ||
        normalized.find(name) != std::string::npos) {
      score = std::max(score, 0.9);
    }
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(c);
    }
  }
  return {best, best_score};
}

Answer QueryEngine::Ask(const std::string& attribute_keywords,
                        const std::string& entity_keywords) const {
  Answer answer;
  std::vector<std::pair<EntityId, double>> entities =
      FindEntities(entity_keywords, 1);
  if (entities.empty()) return answer;
  auto [attribute, attribute_score] = FindAttribute(attribute_keywords);
  if (attribute < 0 || attribute_score < 0.5) return answer;

  answer.entity_cluster = entities[0].first;
  answer.entity_match = entities[0].second;
  answer.entity_name = cluster_text_[answer.entity_cluster];
  answer.attribute = report_->schema.cluster_names[attribute];
  answer.attribute_match = attribute_score;

  auto it = item_of_.find(ItemKey(answer.entity_cluster, attribute));
  if (it == item_of_.end()) return answer;  // entity lacks the attribute
  size_t item_index = it->second;
  answer.value = report_->fusion.chosen[item_index];
  answer.confidence = report_->fusion.confidence[item_index];
  for (const fusion::Claim& claim :
       report_->claims.items()[item_index].claims) {
    AnswerSupport support;
    support.source_name = dataset_->source(claim.source).name;
    support.value = claim.value;
    support.agrees = claim.value == answer.value;
    answer.support.push_back(std::move(support));
  }
  return answer;
}

}  // namespace bdi::core
