#ifndef BDI_CORE_QUERY_H_
#define BDI_CORE_QUERY_H_

#include <string>
#include <vector>

#include "bdi/core/integrator.h"

namespace bdi::core {

/// One supporting claim behind an answer (provenance).
struct AnswerSupport {
  std::string source_name;
  std::string value;  ///< what this source claimed (normalized)
  bool agrees = false;
};

/// A pay-as-you-go answer: the fused value for the best-matching entity
/// and attribute, with the model's confidence and full provenance. An
/// empty `value` means no answer was found.
struct Answer {
  EntityId entity_cluster = kInvalidEntity;
  std::string entity_name;       ///< representative display name
  std::string attribute;         ///< mediated attribute answered
  std::string value;             ///< fused value
  double confidence = 0.0;       ///< fusion confidence of the value
  double attribute_match = 0.0;  ///< how well the attribute matched
  double entity_match = 0.0;     ///< how well the entity matched
  std::vector<AnswerSupport> support;

  bool found() const { return !value.empty(); }
};

/// Keyword query answering over an integration result (the dataspace
/// surface): "<attribute keywords> of <entity keywords>" resolved against
/// the mediated schema and the linked entity clusters, answered with the
/// fused value.
class QueryEngine {
 public:
  /// Both `report` and `dataset` must outlive the engine.
  QueryEngine(const IntegrationReport* report, const Dataset* dataset);

  /// Answers with the best entity for `entity_keywords` and the best
  /// mediated attribute for `attribute_keywords`.
  Answer Ask(const std::string& attribute_keywords,
             const std::string& entity_keywords) const;

  /// Top-k entity clusters matching the keywords, best first (search box
  /// behaviour). Pairs of (cluster id, match score).
  std::vector<std::pair<EntityId, double>> FindEntities(
      const std::string& keywords, size_t k = 5) const;

  /// Best mediated-attribute index for the keywords (-1 if nothing scores
  /// above zero), plus its score.
  std::pair<int, double> FindAttribute(const std::string& keywords) const;

 private:
  const IntegrationReport* report_;
  const Dataset* dataset_;
  /// Representative display text per entity cluster (longest record name
  /// text seen) and its token set.
  std::vector<std::string> cluster_text_;
  std::vector<std::vector<std::string>> cluster_tokens_;
  /// items index: (entity cluster, attr cluster) -> item position.
  std::unordered_map<int64_t, size_t> item_of_;
};

}  // namespace bdi::core

#endif  // BDI_CORE_QUERY_H_
