#ifndef BDI_CORE_INCREMENTAL_INTEGRATOR_H_
#define BDI_CORE_INCREMENTAL_INTEGRATOR_H_

#include <memory>

#include "bdi/core/integrator.h"
#include "bdi/linkage/incremental.h"

namespace bdi::core {

/// Incremental end-to-end integration (the velocity research direction the
/// paper calls out): keep an integrated view continuously fresh as crawl
/// batches arrive, without re-running the whole pipeline.
///
///  * schema alignment is bootstrapped once and refreshed only when new
///    source attributes appear (cheap check per batch);
///  * linkage is maintained by the IncrementalLinker (candidate harvest
///    against the blocking index only for arriving records);
///  * claims of clusters touched by the batch are rebuilt and fusion is
///    re-run over the claim database (fusion is the cheap stage).
///
/// The result matches batch integration closely at a fraction of the
/// per-batch cost (see bench_incremental_integration).
class IncrementalIntegrator {
 public:
  struct Config {
    IntegratorConfig integrator;
    linkage::IncrementalLinker::Config linker;
    /// Re-align the mediated schema on *every* Refresh() instead of only
    /// when new source attributes arrive. The lazy default means the
    /// final schema can depend on which batch last triggered alignment;
    /// with this on, the state after any sequence of Refresh() calls is
    /// bitwise-identical to one bootstrap over the same records — the
    /// invariant the serving layer's snapshot equivalence relies on.
    /// Costs a full alignment pass per batch (cheap next to matching).
    bool realign_schema_each_refresh = false;
  };

  /// `dataset` must outlive the integrator and contain the bootstrap
  /// corpus; Refresh() processes it (and every later append).
  IncrementalIntegrator(Dataset* dataset, const Config& config);

  /// Default-configured form (an overload, not a default argument: the
  /// nested Config's member initializers are not usable as a default
  /// argument inside the enclosing class).
  explicit IncrementalIntegrator(Dataset* dataset);

  IncrementalIntegrator(const IncrementalIntegrator&) = delete;
  IncrementalIntegrator& operator=(const IncrementalIntegrator&) = delete;

  /// Ingests all records appended since the last call, updates linkage,
  /// rebuilds claims and re-fuses. Returns pairwise comparisons spent.
  size_t Refresh();

  /// The current integrated view (valid until the next Refresh).
  const IntegrationReport& report() const { return report_; }

  /// Whether the schema was re-aligned during the last Refresh (new
  /// source attributes arrived).
  bool schema_refreshed() const { return schema_refreshed_; }

  size_t num_integrated_records() const { return linker_->num_indexed(); }

  /// The underlying incremental linker — the serving layer adjusts its
  /// per-batch budgets (set_comparison_budget / set_budget_ms) at runtime.
  linkage::IncrementalLinker& linker() { return *linker_; }

 private:
  void AlignSchema();

  Dataset* dataset_;
  Config config_;
  std::unique_ptr<linkage::IncrementalLinker> linker_;
  IntegrationReport report_;
  size_t known_attr_count_ = 0;
  bool schema_refreshed_ = false;
};

}  // namespace bdi::core

#endif  // BDI_CORE_INCREMENTAL_INTEGRATOR_H_
