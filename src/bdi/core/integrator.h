#ifndef BDI_CORE_INTEGRATOR_H_
#define BDI_CORE_INTEGRATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bdi/fusion/accu.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/claims.h"
#include "bdi/fusion/fusion.h"
#include "bdi/fusion/truthfinder.h"
#include "bdi/linkage/linkage.h"
#include "bdi/model/dataset.h"
#include "bdi/schema/linkage_refinement.h"
#include "bdi/schema/mediated_schema.h"
#include "bdi/schema/probabilistic_schema.h"
#include "bdi/schema/value_normalizer.h"

namespace bdi::core {

/// Which truth-discovery model resolves conflicts at the end of the
/// pipeline.
enum class FusionKind { kVote, kAccu, kAccuSim, kTruthFinder, kAccuCopy };

/// Configuration of the full integration pipeline. Defaults are sensible
/// for product-specification-style corpora.
struct IntegratorConfig {
  // Schema alignment.
  schema::AttrMatchConfig attr_match;
  schema::MediatedSchemaConfig mediated_schema;
  /// Use the probabilistic mediated schema's consensus clustering instead
  /// of single-threshold clustering (pay-as-you-go alignment).
  bool probabilistic_schema = false;
  schema::ProbabilisticSchemaConfig probabilistic;
  double consensus_tau = 0.5;

  // Record linkage. Note the pipeline runs linkage with the aligned schema
  // available to the matcher (linkage and alignment reinforce each other).
  linkage::LinkerConfig linker;

  /// Feedback loop: after linkage, merge schema clusters that agree on
  /// linked entities' values (recovers synonym pairs name similarity
  /// missed), then refit the normalizer before fusion.
  bool linkage_feedback = true;
  schema::LinkageRefinementConfig refinement;

  // Data fusion.
  FusionKind fusion = FusionKind::kAccuCopy;
  fusion::AccuConfig accu;
  fusion::TruthFinderConfig truthfinder;
  fusion::AccuCopyConfig accu_copy;
  /// Snap near-equal numeric claims before fusion (see
  /// ClaimDb::CanonicalizeNumericValues).
  double numeric_snap_tolerance = 0.02;
};

/// Everything the pipeline produced, stage by stage.
struct IntegrationReport {
  schema::AttributeStatistics stats;
  schema::MediatedSchema schema;
  schema::ValueNormalizer normalizer;
  linkage::LinkageResult linkage;
  /// Schema-cluster merges contributed by the linkage feedback loop.
  size_t feedback_merges = 0;
  fusion::ClaimDb claims;
  fusion::FusionResult fusion;

  double schema_seconds = 0.0;
  double linkage_seconds = 0.0;
  double fusion_seconds = 0.0;

  /// Observability hook: when metrics collection is enabled
  /// (metrics::SetEnabled(true)) the pipeline fills this with the
  /// process-wide metrics/trace snapshot serialized as JSON, taken right
  /// after fusion finishes (schema in docs/OBSERVABILITY.md). Empty when
  /// collection is disabled. Purely additive — pipeline outputs are
  /// bitwise-identical with metrics on or off.
  std::string metrics_json;

  /// One-paragraph human-readable summary.
  std::string Summary() const;
};

/// One fused entity: the chosen value per mediated-schema attribute.
struct IntegratedEntity {
  EntityId cluster = kInvalidEntity;
  size_t num_records = 0;
  /// mediated attribute name -> fused value
  std::map<std::string, std::string> values;
};

/// The end-to-end big-data-integration pipeline: schema alignment ->
/// record linkage -> data fusion, as one call.
class Integrator {
 public:
  explicit Integrator(const IntegratorConfig& config = {})
      : config_(config) {}

  /// Runs all three stages over the corpus.
  IntegrationReport Run(const Dataset& dataset) const;

  const IntegratorConfig& config() const { return config_; }

 private:
  /// The three stages proper, wrapped in the "pipeline" trace span;
  /// Run() takes the metrics snapshot after the span closes.
  void RunStages(const Dataset& dataset, IntegrationReport* out) const;

  std::unique_ptr<fusion::FusionMethod> MakeFusionMethod() const;

  IntegratorConfig config_;
};

/// Joins the report back into browsable entities (largest clusters first;
/// at most `max_entities`).
std::vector<IntegratedEntity> MaterializeEntities(
    const IntegrationReport& report, const Dataset& dataset,
    size_t max_entities = 100);

}  // namespace bdi::core

#endif  // BDI_CORE_INTEGRATOR_H_
