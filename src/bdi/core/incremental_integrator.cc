#include "bdi/core/incremental_integrator.h"

#include "bdi/common/logging.h"
#include "bdi/common/timer.h"
#include "bdi/common/trace.h"
#include "bdi/fusion/accu_copy.h"

namespace bdi::core {

IncrementalIntegrator::IncrementalIntegrator(Dataset* dataset)
    : IncrementalIntegrator(dataset, Config()) {}

IncrementalIntegrator::IncrementalIntegrator(Dataset* dataset,
                                             const Config& config)
    : dataset_(dataset), config_(config) {
  BDI_CHECK(dataset_ != nullptr && dataset_->num_records() > 0)
      << "IncrementalIntegrator needs a bootstrap corpus";
  linker_ = std::make_unique<linkage::IncrementalLinker>(dataset_,
                                                         config_.linker);
}

void IncrementalIntegrator::AlignSchema() {
  WallTimer timer;
  trace::StageSpan span("schema");
  span.AddItems(dataset_->num_attrs());
  report_.stats = schema::AttributeStatistics::Compute(*dataset_);
  std::vector<schema::AttrEdge> edges = schema::BuildCandidateEdges(
      report_.stats, config_.integrator.attr_match);
  report_.schema = schema::BuildMediatedSchema(
      report_.stats, edges, config_.integrator.mediated_schema);
  report_.normalizer =
      schema::ValueNormalizer::Fit(report_.stats, report_.schema);
  known_attr_count_ = dataset_->AllSourceAttrs().size();
  report_.schema_seconds = timer.ElapsedSeconds();
  schema_refreshed_ = true;
}

size_t IncrementalIntegrator::Refresh() {
  trace::StageSpan refresh_span("refresh");
  // 1. Schema: re-align only when genuinely new source attributes arrived
  // (the cheap membership check happens on the interned attr universe).
  schema_refreshed_ = false;
  size_t attrs_now = dataset_->AllSourceAttrs().size();
  if (report_.schema.clusters.empty() || attrs_now != known_attr_count_ ||
      config_.realign_schema_each_refresh) {
    AlignSchema();
  }

  // 2. Linkage: incremental.
  WallTimer timer;
  size_t comparisons;
  {
    trace::StageSpan span("linkage");
    comparisons = linker_->AddNewRecords();
    span.AddItems(comparisons);
    report_.linkage.clusters = linker_->Clusters();
    report_.linkage.num_candidates += comparisons;
    report_.linkage.num_matches = linker_->num_edges();
  }
  report_.linkage_seconds = timer.ElapsedSeconds();
  refresh_span.AddItems(comparisons);

  // 3. Feedback + claims + fusion. Claim building over the corpus is a
  // single linear pass and fusion iterates over claims only, so both stay
  // cheap relative to pairwise matching.
  timer.Reset();
  if (config_.integrator.linkage_feedback) {
    trace::StageSpan span("feedback");
    schema::LinkageRefinementReport refinement =
        schema::RefineSchemaWithLinkage(
            *dataset_, report_.stats, report_.schema, report_.normalizer,
            report_.linkage.clusters.label_of_record,
            config_.integrator.refinement);
    report_.feedback_merges = refinement.merges;
    span.AddItems(refinement.merges);
    if (refinement.merges > 0) {
      report_.schema = std::move(refinement.schema);
      report_.normalizer =
          schema::ValueNormalizer::Fit(report_.stats, report_.schema);
    }
  }
  {
    trace::StageSpan span("fusion");
    report_.claims = fusion::ClaimDb::FromPipeline(
        *dataset_, report_.linkage.clusters, report_.schema,
        report_.normalizer, nullptr);
    span.AddItems(report_.claims.num_claims());
    if (config_.integrator.numeric_snap_tolerance > 0.0) {
      report_.claims.CanonicalizeNumericValues(
          config_.integrator.numeric_snap_tolerance);
    }
    fusion::AccuCopyConfig accu_copy = config_.integrator.accu_copy;
    report_.fusion =
        fusion::AccuCopyFusion(accu_copy).Resolve(report_.claims);
  }
  report_.fusion_seconds = timer.ElapsedSeconds();
  return comparisons;
}

}  // namespace bdi::core
