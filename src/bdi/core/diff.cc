#include "bdi/core/diff.h"

#include <map>
#include <set>
#include <unordered_map>

#include "bdi/text/tokenizer.h"

namespace bdi::core {

namespace {

/// Per-cluster view used for cross-run matching.
struct ClusterView {
  std::string name;                       ///< representative display name
  std::set<std::string> identifiers;      ///< identifier tokens
  std::map<std::string, std::string> values;  ///< attr name -> fused value
};

std::vector<ClusterView> BuildViews(const IntegrationReport& report,
                                    const Dataset& dataset) {
  std::vector<ClusterView> views(report.linkage.clusters.num_clusters);
  for (const Record& record : dataset.records()) {
    EntityId cluster = report.linkage.clusters.label_of_record[record.idx];
    ClusterView& view = views[cluster];
    if (!record.fields.empty() &&
        record.fields[0].value.size() > view.name.size()) {
      view.name = record.fields[0].value;
    }
    std::string text;
    for (const Field& field : record.fields) {
      text += field.value;
      text += ' ';
    }
    for (const std::string& token :
         text::IdentifierTokens(text, /*min_len=*/5,
                                /*require_letter=*/true)) {
      view.identifiers.insert(token);
    }
  }
  for (size_t i = 0; i < report.claims.items().size(); ++i) {
    const fusion::DataItem& item = report.claims.items()[i];
    if (item.entity < 0 ||
        static_cast<size_t>(item.entity) >= views.size() || item.attr < 0 ||
        static_cast<size_t>(item.attr) >=
            report.schema.cluster_names.size()) {
      continue;
    }
    views[item.entity].values[report.schema.cluster_names[item.attr]] =
        report.fusion.chosen[i];
  }
  return views;
}

}  // namespace

size_t IntegrationDiff::CountKind(IntegrationChange::Kind kind) const {
  size_t n = 0;
  for (const IntegrationChange& change : changes) {
    if (change.kind == kind) ++n;
  }
  return n;
}

IntegrationDiff DiffIntegrations(const IntegrationReport& old_report,
                                 const Dataset& old_dataset,
                                 const IntegrationReport& new_report,
                                 const Dataset& new_dataset) {
  std::vector<ClusterView> old_views = BuildViews(old_report, old_dataset);
  std::vector<ClusterView> new_views = BuildViews(new_report, new_dataset);

  // Identifier-token index on the new side (ambiguous tokens discarded).
  std::unordered_map<std::string, int> token_to_new;
  for (size_t c = 0; c < new_views.size(); ++c) {
    for (const std::string& token : new_views[c].identifiers) {
      auto it = token_to_new.find(token);
      if (it == token_to_new.end()) {
        token_to_new[token] = static_cast<int>(c);
      } else if (it->second != static_cast<int>(c)) {
        it->second = -1;  // ambiguous
      }
    }
  }
  std::unordered_map<std::string, int> name_to_new;
  for (size_t c = 0; c < new_views.size(); ++c) {
    if (!new_views[c].name.empty()) {
      name_to_new.emplace(new_views[c].name, static_cast<int>(c));
    }
  }

  IntegrationDiff diff;
  std::vector<bool> new_matched(new_views.size(), false);
  for (const ClusterView& old_view : old_views) {
    // Match by identifier first, then by exact representative name.
    int match = -1;
    for (const std::string& token : old_view.identifiers) {
      auto it = token_to_new.find(token);
      if (it != token_to_new.end() && it->second >= 0) {
        match = it->second;
        break;
      }
    }
    if (match < 0) {
      auto it = name_to_new.find(old_view.name);
      if (it != name_to_new.end()) match = it->second;
    }
    if (match < 0 || new_matched[match]) {
      diff.changes.push_back({IntegrationChange::Kind::kEntityDisappeared,
                              old_view.name, "", "", ""});
      continue;
    }
    new_matched[match] = true;
    ++diff.entities_matched;
    const ClusterView& new_view = new_views[match];

    for (const auto& [attr, old_value] : old_view.values) {
      auto it = new_view.values.find(attr);
      if (it == new_view.values.end()) {
        diff.changes.push_back({IntegrationChange::Kind::kValueDisappeared,
                                old_view.name, attr, old_value, ""});
      } else if (it->second != old_value) {
        diff.changes.push_back({IntegrationChange::Kind::kValueChanged,
                                old_view.name, attr, old_value,
                                it->second});
      }
    }
    for (const auto& [attr, new_value] : new_view.values) {
      if (old_view.values.count(attr) == 0) {
        diff.changes.push_back({IntegrationChange::Kind::kValueAppeared,
                                old_view.name, attr, "", new_value});
      }
    }
  }
  for (size_t c = 0; c < new_views.size(); ++c) {
    if (!new_matched[c]) {
      diff.changes.push_back({IntegrationChange::Kind::kEntityAppeared,
                              new_views[c].name, "", "", ""});
    }
  }
  return diff;
}

}  // namespace bdi::core
