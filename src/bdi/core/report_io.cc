#include "bdi/core/report_io.h"

#include <charconv>
#include <limits>
#include <map>

#include "bdi/common/csv.h"
#include "bdi/common/string_util.h"

namespace bdi::core {

namespace {

// Row numbers in messages are 1-based CSV rows (row 1 is the header).
Result<int64_t> ParseInt(const std::string& text, const char* file,
                         size_t row) {
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(std::string(file) + " row " +
                                   std::to_string(row + 1) +
                                   ": not an integer: '" + text + "'");
  }
  return value;
}

Result<double> ParseDouble(const std::string& text, const char* file,
                           size_t row) {
  double value = 0.0;
  if (!ParseLeadingDouble(text, &value, nullptr)) {
    return Status::InvalidArgument(std::string(file) + " row " +
                                   std::to_string(row + 1) +
                                   ": not a number: '" + text + "'");
  }
  return value;
}

Status RangeError(const char* file, size_t row, const char* what,
                  const std::string& text) {
  return Status::OutOfRange(std::string(file) + " row " +
                            std::to_string(row + 1) + ": " + what +
                            " out of range: " + text);
}

}  // namespace

Status SaveIntegration(const IntegrationReport& report,
                       const Dataset& dataset,
                       const std::string& directory) {
  // schema.csv
  {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"cluster", "name", "source", "attribute"});
    for (size_t c = 0; c < report.schema.clusters.size(); ++c) {
      for (const SourceAttr& sa : report.schema.clusters[c]) {
        rows.push_back({std::to_string(c), report.schema.cluster_names[c],
                        std::to_string(sa.source),
                        dataset.attr_name(sa.attr)});
      }
    }
    BDI_RETURN_IF_ERROR(WriteCsvFile(directory + "/schema.csv", rows));
  }
  // entities.csv
  {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"record", "entity"});
    const std::vector<EntityId>& labels =
        report.linkage.clusters.label_of_record;
    for (size_t r = 0; r < labels.size(); ++r) {
      rows.push_back({std::to_string(r), std::to_string(labels[r])});
    }
    BDI_RETURN_IF_ERROR(WriteCsvFile(directory + "/entities.csv", rows));
  }
  // fused.csv + claims.csv
  {
    std::vector<std::vector<std::string>> fused;
    fused.push_back({"entity", "attribute_cluster", "value", "confidence"});
    std::vector<std::vector<std::string>> claims;
    claims.push_back({"entity", "attribute_cluster", "source", "value"});
    for (size_t i = 0; i < report.claims.items().size(); ++i) {
      const fusion::DataItem& item = report.claims.items()[i];
      fused.push_back({std::to_string(item.entity),
                       std::to_string(item.attr), report.fusion.chosen[i],
                       FormatDouble(report.fusion.confidence[i], 6)});
      for (const fusion::Claim& claim : item.claims) {
        claims.push_back({std::to_string(item.entity),
                          std::to_string(item.attr),
                          std::to_string(claim.source), claim.value});
      }
    }
    BDI_RETURN_IF_ERROR(WriteCsvFile(directory + "/fused.csv", fused));
    BDI_RETURN_IF_ERROR(WriteCsvFile(directory + "/claims.csv", claims));
  }
  return Status::OK();
}

Result<IntegrationReport> LoadIntegration(const Dataset& dataset,
                                          const std::string& directory) {
  IntegrationReport report;
  report.stats = schema::AttributeStatistics::Compute(dataset);

  // schema.csv
  {
    BDI_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                         ReadCsvFile(directory + "/schema.csv"));
    if (rows.empty() ||
        rows[0] != std::vector<std::string>{"cluster", "name", "source",
                                            "attribute"}) {
      return Status::InvalidArgument("bad schema.csv header");
    }
    for (size_t r = 1; r < rows.size(); ++r) {
      if (rows[r].size() != 4) {
        return Status::InvalidArgument("bad schema.csv row " +
                                       std::to_string(r + 1));
      }
      BDI_ASSIGN_OR_RETURN(int64_t cluster,
                           ParseInt(rows[r][0], "schema.csv", r));
      BDI_ASSIGN_OR_RETURN(int64_t source,
                           ParseInt(rows[r][2], "schema.csv", r));
      // One cluster id per data row at most, so rows.size() bounds any
      // valid id; without this a corrupt id would drive a huge resize.
      if (cluster < 0 || static_cast<size_t>(cluster) > rows.size()) {
        return RangeError("schema.csv", r, "cluster id", rows[r][0]);
      }
      if (source < 0 ||
          static_cast<size_t>(source) >= dataset.num_sources()) {
        return RangeError("schema.csv", r, "source id", rows[r][2]);
      }
      std::optional<AttrId> attr = dataset.FindAttr(rows[r][3]);
      if (!attr.has_value()) {
        return Status::NotFound("attribute '" + rows[r][3] +
                                "' not in the corpus — wrong dataset?");
      }
      size_t c = static_cast<size_t>(cluster);
      if (report.schema.clusters.size() <= c) {
        report.schema.clusters.resize(c + 1);
        report.schema.cluster_names.resize(c + 1);
      }
      report.schema.cluster_names[c] = rows[r][1];
      SourceAttr sa{static_cast<SourceId>(source), *attr};
      report.schema.clusters[c].push_back(sa);
      report.schema.cluster_of[sa] = static_cast<int>(c);
    }
    report.normalizer =
        schema::ValueNormalizer::Fit(report.stats, report.schema);
  }

  // entities.csv
  {
    BDI_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                         ReadCsvFile(directory + "/entities.csv"));
    if (rows.empty() ||
        rows[0] != std::vector<std::string>{"record", "entity"}) {
      return Status::InvalidArgument("bad entities.csv header");
    }
    if (rows.size() - 1 != dataset.num_records()) {
      return Status::FailedPrecondition(
          "entities.csv covers " + std::to_string(rows.size() - 1) +
          " records but the corpus has " +
          std::to_string(dataset.num_records()));
    }
    report.linkage.clusters.label_of_record.assign(dataset.num_records(),
                                                   kInvalidEntity);
    EntityId max_label = -1;
    for (size_t r = 1; r < rows.size(); ++r) {
      if (rows[r].size() != 2) {
        return Status::InvalidArgument("bad entities.csv row " +
                                       std::to_string(r + 1));
      }
      BDI_ASSIGN_OR_RETURN(int64_t record,
                           ParseInt(rows[r][0], "entities.csv", r));
      BDI_ASSIGN_OR_RETURN(int64_t entity,
                           ParseInt(rows[r][1], "entities.csv", r));
      if (record < 0 ||
          static_cast<size_t>(record) >= dataset.num_records()) {
        return RangeError("entities.csv", r, "record id", rows[r][0]);
      }
      if (entity < kInvalidEntity ||
          entity > std::numeric_limits<EntityId>::max()) {
        return RangeError("entities.csv", r, "entity id", rows[r][1]);
      }
      report.linkage.clusters.label_of_record[record] =
          static_cast<EntityId>(entity);
      max_label = std::max(max_label, static_cast<EntityId>(entity));
    }
    report.linkage.clusters.num_clusters =
        static_cast<size_t>(max_label + 1);
  }

  // claims.csv grouped by (entity, attribute cluster).
  std::map<std::pair<EntityId, int>, std::vector<fusion::Claim>> claim_map;
  {
    BDI_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                         ReadCsvFile(directory + "/claims.csv"));
    if (rows.empty() ||
        rows[0] != std::vector<std::string>{"entity", "attribute_cluster",
                                            "source", "value"}) {
      return Status::InvalidArgument("bad claims.csv header");
    }
    for (size_t r = 1; r < rows.size(); ++r) {
      if (rows[r].size() != 4) {
        return Status::InvalidArgument("bad claims.csv row " +
                                       std::to_string(r + 1));
      }
      BDI_ASSIGN_OR_RETURN(int64_t entity,
                           ParseInt(rows[r][0], "claims.csv", r));
      BDI_ASSIGN_OR_RETURN(int64_t attr,
                           ParseInt(rows[r][1], "claims.csv", r));
      BDI_ASSIGN_OR_RETURN(int64_t source,
                           ParseInt(rows[r][2], "claims.csv", r));
      if (entity < 0 || entity > std::numeric_limits<EntityId>::max()) {
        return RangeError("claims.csv", r, "entity id", rows[r][0]);
      }
      if (attr < 0 || attr > std::numeric_limits<int>::max()) {
        return RangeError("claims.csv", r, "attribute cluster", rows[r][1]);
      }
      // Claim sources index per-source weight vectors downstream; an id
      // outside the corpus would corrupt any re-resolution.
      if (source < 0 ||
          static_cast<size_t>(source) >= dataset.num_sources()) {
        return RangeError("claims.csv", r, "source id", rows[r][2]);
      }
      claim_map[{static_cast<EntityId>(entity), static_cast<int>(attr)}]
          .push_back(fusion::Claim{static_cast<SourceId>(source),
                                   rows[r][3]});
    }
  }

  // fused.csv defines the item order.
  {
    BDI_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                         ReadCsvFile(directory + "/fused.csv"));
    if (rows.empty() ||
        rows[0] != std::vector<std::string>{"entity", "attribute_cluster",
                                            "value", "confidence"}) {
      return Status::InvalidArgument("bad fused.csv header");
    }
    report.claims.set_num_sources(dataset.num_sources());
    for (size_t r = 1; r < rows.size(); ++r) {
      if (rows[r].size() != 4) {
        return Status::InvalidArgument("bad fused.csv row " +
                                       std::to_string(r + 1));
      }
      BDI_ASSIGN_OR_RETURN(int64_t entity,
                           ParseInt(rows[r][0], "fused.csv", r));
      BDI_ASSIGN_OR_RETURN(int64_t attr,
                           ParseInt(rows[r][1], "fused.csv", r));
      BDI_ASSIGN_OR_RETURN(double confidence,
                           ParseDouble(rows[r][3], "fused.csv", r));
      if (entity < 0 || entity > std::numeric_limits<EntityId>::max()) {
        return RangeError("fused.csv", r, "entity id", rows[r][0]);
      }
      if (attr < 0 || attr > std::numeric_limits<int>::max()) {
        return RangeError("fused.csv", r, "attribute cluster", rows[r][1]);
      }
      fusion::DataItem item;
      item.entity = static_cast<EntityId>(entity);
      item.attr = static_cast<int>(attr);
      auto it = claim_map.find({item.entity, item.attr});
      if (it != claim_map.end()) {
        item.claims = it->second;
      }
      report.claims.AddItem(std::move(item));
      report.fusion.chosen.push_back(rows[r][2]);
      report.fusion.confidence.push_back(confidence);
    }
    report.fusion.source_accuracy.assign(dataset.num_sources(), 0.0);
  }
  return report;
}

}  // namespace bdi::core
