#include "bdi/core/integrator.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "bdi/common/metrics.h"
#include "bdi/common/timer.h"
#include "bdi/common/trace.h"

namespace bdi::core {

std::string IntegrationReport::Summary() const {
  std::ostringstream out;
  out << "schema: " << schema.clusters.size() << " mediated attributes ("
      << schema_seconds << "s); linkage: " << linkage.clusters.num_clusters
      << " entities from " << linkage.num_candidates << " candidates, "
      << linkage.num_matches << " matches (" << linkage_seconds
      << "s); fusion: " << claims.items().size() << " items, "
      << claims.num_claims() << " claims, " << fusion.iterations
      << " iterations (" << fusion_seconds << "s)";
  return out.str();
}

std::unique_ptr<fusion::FusionMethod> Integrator::MakeFusionMethod() const {
  switch (config_.fusion) {
    case FusionKind::kVote:
      return std::make_unique<fusion::VoteFusion>();
    case FusionKind::kAccu:
      return std::make_unique<fusion::AccuFusion>(config_.accu);
    case FusionKind::kAccuSim: {
      fusion::AccuConfig accusim = config_.accu;
      if (accusim.similarity_rho <= 0.0) accusim.similarity_rho = 0.3;
      return std::make_unique<fusion::AccuFusion>(accusim);
    }
    case FusionKind::kTruthFinder:
      return std::make_unique<fusion::TruthFinderFusion>(
          config_.truthfinder);
    case FusionKind::kAccuCopy:
      return std::make_unique<fusion::AccuCopyFusion>(config_.accu_copy);
  }
  return std::make_unique<fusion::VoteFusion>();
}

IntegrationReport Integrator::Run(const Dataset& dataset) const {
  IntegrationReport report;
  RunStages(dataset, &report);
  // Snapshot after the pipeline span has closed so the export includes
  // this very run's "pipeline" aggregate, not just its children.
  if (metrics::Enabled()) {
    report.metrics_json = metrics::Registry::Get().ToJson();
  }
  return report;
}

void Integrator::RunStages(const Dataset& dataset,
                           IntegrationReport* out) const {
  IntegrationReport& report = *out;
  WallTimer timer;
  trace::StageSpan pipeline_span("pipeline");
  pipeline_span.AddItems(dataset.num_records());

  // Stage 1: bottom-up schema alignment.
  {
    trace::StageSpan span("schema");
    span.AddItems(dataset.num_attrs());
    report.stats = schema::AttributeStatistics::Compute(dataset);
    std::vector<schema::AttrEdge> edges =
        schema::BuildCandidateEdges(report.stats, config_.attr_match);
    if (config_.probabilistic_schema) {
      schema::ProbabilisticMediatedSchema pms =
          schema::ProbabilisticMediatedSchema::Build(report.stats, edges,
                                                     config_.probabilistic);
      report.schema = pms.Consensus(report.stats, config_.consensus_tau);
    } else {
      report.schema = schema::BuildMediatedSchema(report.stats, edges,
                                                  config_.mediated_schema);
    }
    report.normalizer =
        schema::ValueNormalizer::Fit(report.stats, report.schema);
  }
  report.schema_seconds = timer.ElapsedSeconds();

  // Stage 2: record linkage, with the aligned schema strengthening the
  // matcher's value-agreement evidence. (Linker::Run opens the
  // pipeline/linkage span and its blocking/matching/clustering children.)
  timer.Reset();
  linkage::Linker linker(&dataset, config_.linker, &report.schema,
                         &report.normalizer);
  report.linkage = linker.Run();
  report.linkage_seconds = timer.ElapsedSeconds();

  // Feedback loop: linked entities reveal attribute correspondences the
  // name/value matchers missed; fold them into the schema before fusion.
  if (config_.linkage_feedback) {
    trace::StageSpan span("feedback");
    schema::LinkageRefinementReport refinement =
        schema::RefineSchemaWithLinkage(
            dataset, report.stats, report.schema, report.normalizer,
            report.linkage.clusters.label_of_record, config_.refinement);
    report.feedback_merges = refinement.merges;
    span.AddItems(refinement.merges);
    if (refinement.merges > 0) {
      report.schema = std::move(refinement.schema);
      report.normalizer =
          schema::ValueNormalizer::Fit(report.stats, report.schema);
    }
  }

  // Stage 3: data fusion over the linked, aligned, normalized claims.
  timer.Reset();
  {
    trace::StageSpan span("fusion");
    report.claims = fusion::ClaimDb::FromPipeline(
        dataset, report.linkage.clusters, report.schema, report.normalizer,
        &linker.roles());
    if (config_.numeric_snap_tolerance > 0.0) {
      report.claims.CanonicalizeNumericValues(
          config_.numeric_snap_tolerance);
    }
    span.AddItems(report.claims.num_claims());
    report.fusion = MakeFusionMethod()->Resolve(report.claims);
  }
  report.fusion_seconds = timer.ElapsedSeconds();
}

std::vector<IntegratedEntity> MaterializeEntities(
    const IntegrationReport& report, const Dataset& dataset,
    size_t max_entities) {
  std::unordered_map<EntityId, IntegratedEntity> by_cluster;
  for (const Record& record : dataset.records()) {
    EntityId cluster = report.linkage.clusters.label_of_record[record.idx];
    IntegratedEntity& entity = by_cluster[cluster];
    entity.cluster = cluster;
    ++entity.num_records;
  }
  for (size_t i = 0; i < report.claims.items().size(); ++i) {
    const fusion::DataItem& item = report.claims.items()[i];
    auto it = by_cluster.find(item.entity);
    if (it == by_cluster.end()) continue;
    if (item.attr < 0 ||
        static_cast<size_t>(item.attr) >= report.schema.cluster_names.size()) {
      continue;
    }
    it->second.values[report.schema.cluster_names[item.attr]] =
        report.fusion.chosen[i];
  }
  std::vector<IntegratedEntity> entities;
  entities.reserve(by_cluster.size());
  for (auto& [cluster, entity] : by_cluster) {
    entities.push_back(std::move(entity));
  }
  std::sort(entities.begin(), entities.end(),
            [](const IntegratedEntity& a, const IntegratedEntity& b) {
              if (a.num_records != b.num_records) {
                return a.num_records > b.num_records;
              }
              return a.cluster < b.cluster;
            });
  if (entities.size() > max_entities) entities.resize(max_entities);
  return entities;
}

}  // namespace bdi::core
