#ifndef BDI_CORE_REPORT_IO_H_
#define BDI_CORE_REPORT_IO_H_

#include <string>

#include "bdi/common/result.h"
#include "bdi/common/status.h"
#include "bdi/core/integrator.h"

namespace bdi::core {

/// Persists the queryable parts of an integration result as three CSV
/// files under `directory` (created by the caller):
///
///   schema.csv   — mediated attribute clusters
///                  (cluster,name,source,attribute)
///   entities.csv — record -> entity-cluster labels (record,entity)
///   fused.csv    — resolved items with confidence
///                  (entity,attribute_cluster,value,confidence)
///
/// Together with the corpus CSV (WriteDatasetCsv) this is enough to
/// rebuild a queryable view without re-running the pipeline.
Status SaveIntegration(const IntegrationReport& report,
                       const Dataset& dataset,
                       const std::string& directory);

/// Reloads a saved integration against the same corpus. The dataset must
/// be the corpus the report was computed from (same interning order, e.g.
/// reloaded from the same CSV); a mismatch is detected via record counts
/// and attribute names where possible.
///
/// The loaded report supports MaterializeEntities and QueryEngine; it does
/// not restore internal statistics (stats/normalizer are recomputed).
bdi::Result<IntegrationReport> LoadIntegration(const Dataset& dataset,
                                          const std::string& directory);

}  // namespace bdi::core

#endif  // BDI_CORE_REPORT_IO_H_
