#include "bdi/fusion/online.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace bdi::fusion {

Result<OnlineFusionResult> ResolveOnline(
    const ClaimDb& db, const std::vector<double>& source_accuracy,
    const OnlineFusionConfig& config) {
  if (source_accuracy.size() < db.num_sources()) {
    return Status::InvalidArgument(
        "source_accuracy has " + std::to_string(source_accuracy.size()) +
        " entries but the claim db references " +
        std::to_string(db.num_sources()) + " sources");
  }
  OnlineFusionResult result;
  result.chosen.resize(db.items().size());
  result.confidence.resize(db.items().size(), 0.0);
  result.probes.resize(db.items().size(), 0);

  // Clamped accuracies drive everything downstream — probe order, vote
  // weights and the adversarial-mass bookkeeping — so the order can never
  // disagree with the weights for out-of-range estimates.
  std::vector<double> clamped(db.num_sources(), 0.0);
  std::vector<double> weight(db.num_sources(), 0.0);
  for (size_t s = 0; s < db.num_sources(); ++s) {
    clamped[s] = std::clamp(source_accuracy[s], config.min_accuracy,
                            config.max_accuracy);
    weight[s] =
        std::log(config.n_false_values * clamped[s] / (1.0 - clamped[s]));
  }

  for (size_t i = 0; i < db.items().size(); ++i) {
    const DataItem& item = db.items()[i];
    result.total_claims += item.claims.size();
    if (item.claims.empty()) continue;

    // Probe order: descending clamped accuracy (ties by source id).
    std::vector<size_t> order(item.claims.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      double ax = clamped[item.claims[x].source];
      double ay = clamped[item.claims[y].source];
      if (ax != ay) return ax > ay;
      return item.claims[x].source < item.claims[y].source;
    });

    // Worst-case remaining mass (every unprobed source agrees on one
    // value) drives the exact early-termination test; the *expected*
    // adversarial mass (each unprobed source lands on a particular wrong
    // value with probability (1-a)/n) drives the confidence bar — that is
    // what lets a lower bar stop earlier at some risk.
    double remaining = 0.0;
    double expected_false = 0.0;
    for (const Claim& claim : item.claims) {
      double w = std::max(0.0, weight[claim.source]);
      remaining += w;
      expected_false += w * (1.0 - clamped[claim.source]) /
                        std::max(1.0, config.n_false_values);
    }

    std::map<std::string, double> score;
    size_t probed = 0;
    std::string leader;
    double leader_confidence = 0.0;
    for (size_t k = 0; k < order.size(); ++k) {
      const Claim& claim = item.claims[order[k]];
      double w = std::max(0.0, weight[claim.source]);
      remaining -= w;
      expected_false -= w * (1.0 - clamped[claim.source]) /
                        std::max(1.0, config.n_false_values);
      score[claim.value] += weight[claim.source];
      ++probed;

      // Posterior over observed values PLUS a virtual challenger: the
      // strongest value the still-unprobed sources could yet assemble.
      // Without it, the first probe would trivially have confidence 1.
      // Top two scores (a tied runner-up must count: a leader sharing its
      // score with another value is not unassailable).
      double max_score = -1e300;
      double second_best = -1e300;
      for (const auto& [value, s] : score) {
        if (s > max_score) {
          second_best = max_score;
          max_score = s;
        } else if (s > second_best) {
          second_best = s;
        }
      }
      double challenger_base =
          second_best == -1e300 ? 0.0 : std::max(second_best, 0.0);
      double challenger = challenger_base + std::max(0.0, expected_false);
      double worst_case_challenger = challenger_base + remaining;
      double z = std::exp(challenger - std::max(challenger, max_score));
      double reference = std::max(challenger, max_score);
      for (const auto& [value, s] : score) {
        if (s == second_best && second_best != -1e300) continue;  // folded
        z += std::exp(s - reference);
      }
      leader_confidence = -1.0;
      for (const auto& [value, s] : score) {
        double p = std::exp(s - reference) / z;
        if (p > leader_confidence) {
          leader_confidence = p;
          leader = value;
        }
      }
      if (leader_confidence >= config.confidence_stop) break;
      if (config.early_termination && max_score > worst_case_challenger) {
        break;
      }
    }
    result.chosen[i] = leader;
    result.confidence[i] = leader_confidence;
    result.probes[i] = probed;
    result.total_probes += probed;
  }
  return result;
}

}  // namespace bdi::fusion
