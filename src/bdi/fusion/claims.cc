#include "bdi/fusion/claims.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "bdi/common/metrics.h"
#include "bdi/common/string_util.h"

namespace bdi::fusion {

namespace {

metrics::Counter& ItemsBuiltCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.fusion.items.built");
  return *counter;
}

metrics::Counter& ClaimsBuiltCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.fusion.claims.built");
  return *counter;
}

metrics::Counter& ValuesInternedCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.fusion.values.interned");
  return *counter;
}

}  // namespace

ClaimDb ClaimDb::FromPipeline(const Dataset& dataset,
                              const linkage::EntityClusters& clusters,
                              const schema::MediatedSchema& schema,
                              const schema::ValueNormalizer& normalizer,
                              const linkage::AttrRoles* roles) {
  // (cluster entity, schema cluster) -> claims, first-wins per source.
  std::map<std::pair<EntityId, int>, std::map<SourceId, std::string>> cells;
  for (const Record& record : dataset.records()) {
    EntityId entity = clusters.label_of_record[record.idx];
    for (const Field& field : record.fields) {
      SourceAttr sa{record.source, field.attr};
      if (roles != nullptr &&
          roles->RoleOf(sa) != linkage::AttrRole::kOther) {
        continue;
      }
      int cluster = schema.ClusterOf(sa);
      if (cluster < 0) continue;
      std::string value = normalizer.Normalize(sa, field.value);
      if (value.empty()) continue;
      cells[{entity, cluster}].emplace(record.source, std::move(value));
    }
  }
  ClaimDb db;
  db.num_sources_ = dataset.num_sources();
  for (auto& [key, by_source] : cells) {
    DataItem item;
    item.entity = key.first;
    item.attr = key.second;
    item.claims.reserve(by_source.size());
    for (auto& [source, value] : by_source) {
      item.claims.push_back(Claim{source, std::move(value)});
    }
    db.items_.push_back(std::move(item));
  }
  ItemsBuiltCounter().Add(db.items_.size());
  ClaimsBuiltCounter().Add(db.num_claims());
  return db;
}

ClaimDb ClaimDb::FromGroundTruth(const GroundTruth& truth,
                                 size_t num_sources) {
  std::map<std::pair<EntityId, int>, std::vector<Claim>> cells;
  for (const GroundTruth::TrueClaim& claim : truth.claims) {
    cells[{claim.entity, claim.canonical_attr}].push_back(
        Claim{claim.source, claim.value});
  }
  ClaimDb db;
  db.num_sources_ = num_sources;
  for (auto& [key, claims] : cells) {
    DataItem item;
    item.entity = key.first;
    item.attr = key.second;
    item.claims = std::move(claims);
    db.items_.push_back(std::move(item));
  }
  return db;
}

const ValueIndex& ClaimDb::value_index() const {
  if (index_ != nullptr) return *index_;
  auto index = std::make_shared<ValueIndex>();
  std::unordered_map<std::string, ValueId> ids;
  size_t total_claims = num_claims();
  index->claim_local.reserve(total_claims);
  index->claim_value.reserve(total_claims);
  index->claim_offset.reserve(items_.size() + 1);
  index->distinct_offset.reserve(items_.size() + 1);
  index->claim_offset.push_back(0);
  index->distinct_offset.push_back(0);

  // Scratch: the item's distinct values sorted by string, mirroring the
  // iteration order of the std::map vote tables this index replaces.
  std::vector<const std::string*> item_values;
  for (const DataItem& item : items_) {
    item_values.clear();
    for (const Claim& claim : item.claims) {
      item_values.push_back(&claim.value);
    }
    std::sort(item_values.begin(), item_values.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    item_values.erase(std::unique(item_values.begin(), item_values.end(),
                                  [](const std::string* a,
                                     const std::string* b) {
                                    return *a == *b;
                                  }),
                      item_values.end());
    for (const std::string* value : item_values) {
      auto [it, inserted] =
          ids.emplace(*value, static_cast<ValueId>(index->values.size()));
      if (inserted) index->values.push_back(*value);
      index->distinct.push_back(it->second);
    }
    index->distinct_offset.push_back(index->distinct.size());
    size_t base = index->distinct_offset[index->distinct_offset.size() - 2];
    for (const Claim& claim : item.claims) {
      // Binary search the sorted distinct list for the claim's local id.
      auto it = std::lower_bound(item_values.begin(), item_values.end(),
                                 &claim.value,
                                 [](const std::string* a,
                                    const std::string* b) {
                                   return *a < *b;
                                 });
      uint32_t local =
          static_cast<uint32_t>(it - item_values.begin());
      index->claim_local.push_back(local);
      index->claim_value.push_back(index->distinct[base + local]);
    }
    index->claim_offset.push_back(index->claim_local.size());
  }
  ValuesInternedCounter().Add(index->values.size());
  index_ = std::move(index);
  return *index_;
}

void ClaimDb::CanonicalizeNumericValues(double tolerance) {
  index_.reset();
  for (DataItem& item : items_) {
    // Parse all numeric claims.
    struct Parsed {
      size_t claim_index;
      double value;
    };
    std::vector<Parsed> numerics;
    for (size_t c = 0; c < item.claims.size(); ++c) {
      double v = 0.0;
      std::string unit;
      if (ParseLeadingDouble(item.claims[c].value, &v, &unit) &&
          unit.empty()) {
        numerics.push_back(Parsed{c, v});
      }
    }
    if (numerics.size() < 2) continue;
    std::sort(numerics.begin(), numerics.end(),
              [](const Parsed& a, const Parsed& b) {
                return a.value < b.value;
              });
    // Greedy clustering over the sorted values: a new group starts when the
    // next value is more than `tolerance` away (relatively) from the
    // group's first value.
    size_t group_begin = 0;
    auto flush = [&](size_t begin, size_t end) {
      if (end - begin < 2) return;
      // Representative: the median value in the group.
      double representative = numerics[begin + (end - begin) / 2].value;
      std::string text = FormatDouble(representative, 2);
      for (size_t i = begin; i < end; ++i) {
        item.claims[numerics[i].claim_index].value = text;
      }
    };
    for (size_t i = 1; i < numerics.size(); ++i) {
      double base = std::max(1e-9, std::abs(numerics[group_begin].value));
      if (std::abs(numerics[i].value - numerics[group_begin].value) / base >
          tolerance) {
        flush(group_begin, i);
        group_begin = i;
      }
    }
    flush(group_begin, numerics.size());
  }
}

size_t ClaimDb::num_claims() const {
  size_t total = 0;
  for (const DataItem& item : items_) total += item.claims.size();
  return total;
}

}  // namespace bdi::fusion
