#include "bdi/fusion/copy_detection.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "bdi/common/executor.h"
#include "bdi/common/logging.h"

namespace bdi::fusion {

namespace {

struct PairStats {
  size_t shared_true = 0;
  size_t shared_false = 0;
  size_t different = 0;
  /// Accuracy of each endpoint on items NOT shared with the other — the
  /// directional signal: a copier looks much worse on its own.
  size_t a_solo_correct = 0, a_solo_total = 0;
  size_t b_solo_correct = 0, b_solo_total = 0;

  size_t common() const { return shared_true + shared_false + different; }

  void Merge(const PairStats& o) {
    shared_true += o.shared_true;
    shared_false += o.shared_false;
    different += o.different;
    a_solo_correct += o.a_solo_correct;
    a_solo_total += o.a_solo_total;
    b_solo_correct += o.b_solo_correct;
    b_solo_total += o.b_solo_total;
  }
};

}  // namespace

std::vector<SourceDependence> DetectCopying(
    const ClaimDb& db, const std::vector<std::string>& truth_estimate,
    const std::vector<double>& source_accuracy,
    const CopyDetectionConfig& config) {
  BDI_CHECK(truth_estimate.size() == db.items().size());
  const ValueIndex& vi = db.value_index();
  std::map<std::pair<SourceId, SourceId>, PairStats> stats;
  std::mutex stats_mu;

  // Parallel over item chunks with chunk-local tallies; the merge order is
  // irrelevant because the statistics are integer counts. Value equality is
  // a local-id compare thanks to the interned index; the truth string is
  // matched once per item instead of once per claim pair.
  ParallelForRanges(
      db.items().size(),
      [&](size_t begin, size_t end) {
        std::map<std::pair<SourceId, SourceId>, PairStats> local;
        for (size_t i = begin; i < end; ++i) {
          const DataItem& item = db.items()[i];
          const std::string& truth = truth_estimate[i];
          size_t base = vi.claim_offset[i];
          // Local id of the truth value among the item's distinct values,
          // or d (matching nothing) when the truth is not claimed here.
          size_t d = vi.ItemDistinctCount(i);
          uint32_t truth_local = static_cast<uint32_t>(d);
          for (size_t v = 0; v < d; ++v) {
            if (vi.values[vi.DistinctValue(i, v)] == truth) {
              truth_local = static_cast<uint32_t>(v);
              break;
            }
          }
          for (size_t x = 0; x < item.claims.size(); ++x) {
            for (size_t y = x + 1; y < item.claims.size(); ++y) {
              const Claim& ca = item.claims[x];
              const Claim& cb = item.claims[y];
              SourceId a = std::min(ca.source, cb.source);
              SourceId b = std::max(ca.source, cb.source);
              if (a == b) continue;
              uint32_t first_value = vi.claim_local[base + (ca.source == a ? x : y)];
              uint32_t second_value = vi.claim_local[base + (ca.source == a ? y : x)];
              PairStats& ps = local[{a, b}];
              if (first_value == second_value) {
                if (first_value == truth_local) {
                  ++ps.shared_true;
                } else {
                  ++ps.shared_false;
                }
              } else {
                ++ps.different;
                // On disagreeing items each side acts alone.
                ++ps.a_solo_total;
                if (first_value == truth_local) ++ps.a_solo_correct;
                ++ps.b_solo_total;
                if (second_value == truth_local) ++ps.b_solo_correct;
              }
            }
          }
        }
        std::lock_guard<std::mutex> lock(stats_mu);
        for (const auto& [pair, ps] : local) stats[pair].Merge(ps);
      },
      config.num_threads);

  std::vector<SourceDependence> out;
  for (const auto& [pair, ps] : stats) {
    if (ps.common() < config.min_common_items) continue;
    double a_accuracy = std::clamp(source_accuracy[pair.first],
                                   config.min_accuracy, config.max_accuracy);
    double b_accuracy = std::clamp(source_accuracy[pair.second],
                                   config.min_accuracy, config.max_accuracy);
    double n = std::max(1.0, config.n_false_values);
    double c = std::clamp(config.copy_rate, 0.01, 0.99);

    // Category probabilities under independence.
    double pt_ind = a_accuracy * b_accuracy;
    double pf_ind = (1.0 - a_accuracy) * (1.0 - b_accuracy) / n;
    double pd_ind = std::max(1e-12, 1.0 - pt_ind - pf_ind);

    // Under dependence (one copies the other with per-item rate c): a
    // copied item agrees with certainty (true w.p. the original's
    // accuracy); an uncopied item behaves independently. Using the mean
    // accuracy for the original keeps the test direction-free.
    double original_accuracy = 0.5 * (a_accuracy + b_accuracy);
    double pt_dep = c * original_accuracy + (1.0 - c) * pt_ind;
    double pf_dep = c * (1.0 - original_accuracy) + (1.0 - c) * pf_ind;
    double pd_dep = std::max(1e-12, (1.0 - c) * pd_ind);

    // Posterior via log-likelihood ratio.
    double log_ratio =
        static_cast<double>(ps.shared_true) * std::log(pt_ind / pt_dep) +
        static_cast<double>(ps.shared_false) * std::log(pf_ind / pf_dep) +
        static_cast<double>(ps.different) * std::log(pd_ind / pd_dep);
    double prior_odds = (1.0 - config.alpha) / config.alpha;
    // P(dep | data) = 1 / (1 + prior_odds * exp(log_ratio))
    double probability;
    if (log_ratio > 500.0) {
      probability = 0.0;
    } else if (log_ratio < -500.0) {
      probability = 1.0;
    } else {
      probability = 1.0 / (1.0 + prior_odds * std::exp(log_ratio));
    }

    SourceDependence dependence;
    dependence.a = pair.first;
    dependence.b = pair.second;
    dependence.probability = probability;
    dependence.common_items = ps.common();
    dependence.shared_true = ps.shared_true;
    dependence.shared_false = ps.shared_false;
    dependence.different = ps.different;
    // Direction: the endpoint that is markedly less accurate when acting
    // alone is the likely copier.
    if (ps.a_solo_total >= 3 && ps.b_solo_total >= 3) {
      double a_solo = static_cast<double>(ps.a_solo_correct) /
                      static_cast<double>(ps.a_solo_total);
      double b_solo = static_cast<double>(ps.b_solo_correct) /
                      static_cast<double>(ps.b_solo_total);
      if (a_solo + 0.1 < b_solo) {
        dependence.likely_copier = pair.first;
      } else if (b_solo + 0.1 < a_solo) {
        dependence.likely_copier = pair.second;
      }
    }
    out.push_back(dependence);
  }
  return out;
}

std::vector<std::vector<double>> IndependenceMatrix(
    size_t num_sources, const std::vector<SourceDependence>& dependencies) {
  std::vector<std::vector<double>> matrix(
      num_sources, std::vector<double>(num_sources, 1.0));
  for (const SourceDependence& d : dependencies) {
    double independence = 1.0 - d.probability;
    matrix[d.a][d.b] = independence;
    matrix[d.b][d.a] = independence;
  }
  return matrix;
}

}  // namespace bdi::fusion
