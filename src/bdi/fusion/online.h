#ifndef BDI_FUSION_ONLINE_H_
#define BDI_FUSION_ONLINE_H_

#include <vector>

#include "bdi/common/result.h"
#include "bdi/fusion/accu.h"

namespace bdi::fusion {

/// Online data fusion (Liu, Dong, Ooi, Srivastava, VLDB'11 shape): instead
/// of probing every source for every item, probe sources in descending
/// estimated accuracy and stop as soon as the leading value's posterior
/// can no longer be overturned by the sources not yet probed (or clears a
/// confidence bar). Returns answers of almost-batch quality at a fraction
/// of the source accesses — the pay-as-you-go veracity story.
struct OnlineFusionConfig {
  /// Stop once the leading value's posterior reaches this.
  double confidence_stop = 0.95;
  /// Also stop when the remaining (unprobed) sources cannot flip the
  /// leader even if they all agreed on the runner-up.
  bool early_termination = true;
  /// Assumed number of false values (Accu model).
  double n_false_values = 10.0;
  double min_accuracy = 0.01;
  double max_accuracy = 0.99;
};

struct OnlineFusionResult {
  std::vector<std::string> chosen;
  std::vector<double> confidence;
  /// Sources actually probed per item.
  std::vector<size_t> probes;
  size_t total_probes = 0;
  size_t total_claims = 0;  ///< probes a batch resolver would have made

  double probe_fraction() const {
    return total_claims == 0 ? 0.0
                             : static_cast<double>(total_probes) /
                                   static_cast<double>(total_claims);
  }
};

/// Resolves every item by incremental probing. `source_accuracy` supplies
/// the probe order and vote weights (use estimates from a prior batch run
/// or a sample; the resolver never sees the truth). Accuracies are clamped
/// to [min_accuracy, max_accuracy] before BOTH the probe ordering and the
/// vote weights, so the two can never disagree. Returns InvalidArgument
/// (instead of aborting) when `source_accuracy` is shorter than the number
/// of sources the claim db references.
Result<OnlineFusionResult> ResolveOnline(
    const ClaimDb& db, const std::vector<double>& source_accuracy,
    const OnlineFusionConfig& config = {});

}  // namespace bdi::fusion

#endif  // BDI_FUSION_ONLINE_H_
