#ifndef BDI_FUSION_CLAIMS_H_
#define BDI_FUSION_CLAIMS_H_

#include <string>
#include <vector>

#include "bdi/linkage/attr_roles.h"
#include "bdi/linkage/clustering.h"
#include "bdi/model/dataset.h"
#include "bdi/model/ground_truth.h"
#include "bdi/schema/mediated_schema.h"
#include "bdi/schema/value_normalizer.h"

namespace bdi::fusion {

/// What one source asserts about one data item.
struct Claim {
  SourceId source = kInvalidSource;
  std::string value;
};

/// One data item — an (entity, attribute) cell — with all its claims.
/// `entity` and `attr` are opaque ids whose meaning depends on the builder
/// (linkage cluster + schema cluster for the pipeline; ground-truth entity
/// + canonical attribute when built from truth).
struct DataItem {
  EntityId entity = kInvalidEntity;
  int attr = -1;
  std::vector<Claim> claims;
};

/// The conflicting-claim database that fusion methods resolve.
class ClaimDb {
 public:
  ClaimDb() = default;

  /// Builds items from the integration pipeline's outputs: records grouped
  /// by linkage cluster, attributes grouped by the mediated schema, values
  /// normalized. Name/identifier-role attributes are excluded (they are
  /// linkage evidence, not specification facts). When one source has
  /// multiple records in a cluster, the first claim per (source, attr)
  /// wins.
  static ClaimDb FromPipeline(const Dataset& dataset,
                              const linkage::EntityClusters& clusters,
                              const schema::MediatedSchema& schema,
                              const schema::ValueNormalizer& normalizer,
                              const linkage::AttrRoles* roles);

  /// Builds items directly from ground-truth claims (perfect extraction,
  /// linkage and alignment) — the setting of the fusion-only experiments.
  static ClaimDb FromGroundTruth(const GroundTruth& truth,
                                 size_t num_sources);

  /// Snaps numeric claim values within `tolerance` relative difference to a
  /// per-item representative, absorbing formatting round-off before
  /// exact-match fusion.
  void CanonicalizeNumericValues(double tolerance = 0.02);

  const std::vector<DataItem>& items() const { return items_; }
  std::vector<DataItem>& items() { return items_; }
  size_t num_sources() const { return num_sources_; }
  void set_num_sources(size_t n) { num_sources_ = n; }

  /// Total number of claims across items.
  size_t num_claims() const;

  void AddItem(DataItem item) { items_.push_back(std::move(item)); }

 private:
  std::vector<DataItem> items_;
  size_t num_sources_ = 0;
};

}  // namespace bdi::fusion

#endif  // BDI_FUSION_CLAIMS_H_
