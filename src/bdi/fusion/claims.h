#ifndef BDI_FUSION_CLAIMS_H_
#define BDI_FUSION_CLAIMS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bdi/linkage/attr_roles.h"
#include "bdi/linkage/clustering.h"
#include "bdi/model/dataset.h"
#include "bdi/model/ground_truth.h"
#include "bdi/schema/mediated_schema.h"
#include "bdi/schema/value_normalizer.h"

namespace bdi::fusion {

/// What one source asserts about one data item.
struct Claim {
  SourceId source = kInvalidSource;
  std::string value;
};

/// One data item — an (entity, attribute) cell — with all its claims.
/// `entity` and `attr` are opaque ids whose meaning depends on the builder
/// (linkage cluster + schema cluster for the pipeline; ground-truth entity
/// + canonical attribute when built from truth).
struct DataItem {
  EntityId entity = kInvalidEntity;
  int attr = -1;
  std::vector<Claim> claims;
};

/// Interned id of a distinct claim value string within a ClaimDb.
using ValueId = int32_t;
inline constexpr ValueId kInvalidValue = -1;

/// Dense-id view of a ClaimDb's claim values, built once and shared by the
/// iterative fusion methods so their per-item vote tables become flat
/// vector scans instead of string-keyed maps. Claims are addressed by a
/// flat item-major slot: claims of item i occupy slots
/// [claim_offset[i], claim_offset[i+1]), in item claim order. Within an
/// item, distinct values get local ids 0..k-1 ordered by value string —
/// the same lexicographic order the former std::map tables iterated in,
/// preserving tie-break behavior exactly.
struct ValueIndex {
  /// id -> value string (one entry per distinct string in the db).
  std::vector<std::string> values;
  /// Per claim slot: local id of the claim's value within its item.
  std::vector<uint32_t> claim_local;
  /// Per claim slot: global ValueId of the claim's value.
  std::vector<ValueId> claim_value;
  /// items()+1 prefix offsets into the claim-slot arrays.
  std::vector<size_t> claim_offset;
  /// Flat per-item distinct-value lists (global ids, sorted by string).
  std::vector<ValueId> distinct;
  /// items()+1 prefix offsets into `distinct`.
  std::vector<size_t> distinct_offset;

  size_t num_claims() const { return claim_local.size(); }
  size_t ItemDistinctCount(size_t item) const {
    return distinct_offset[item + 1] - distinct_offset[item];
  }
  /// Global id of item `item`'s local value `local`.
  ValueId DistinctValue(size_t item, size_t local) const {
    return distinct[distinct_offset[item] + local];
  }
};

/// The conflicting-claim database that fusion methods resolve.
class ClaimDb {
 public:
  ClaimDb() = default;

  /// Builds items from the integration pipeline's outputs: records grouped
  /// by linkage cluster, attributes grouped by the mediated schema, values
  /// normalized. Name/identifier-role attributes are excluded (they are
  /// linkage evidence, not specification facts). When one source has
  /// multiple records in a cluster, the first claim per (source, attr)
  /// wins.
  static ClaimDb FromPipeline(const Dataset& dataset,
                              const linkage::EntityClusters& clusters,
                              const schema::MediatedSchema& schema,
                              const schema::ValueNormalizer& normalizer,
                              const linkage::AttrRoles* roles);

  /// Builds items directly from ground-truth claims (perfect extraction,
  /// linkage and alignment) — the setting of the fusion-only experiments.
  static ClaimDb FromGroundTruth(const GroundTruth& truth,
                                 size_t num_sources);

  /// Snaps numeric claim values within `tolerance` relative difference to a
  /// per-item representative, absorbing formatting round-off before
  /// exact-match fusion.
  void CanonicalizeNumericValues(double tolerance = 0.02);

  const std::vector<DataItem>& items() const { return items_; }
  /// Mutable access invalidates any previously built value index.
  std::vector<DataItem>& items() {
    index_.reset();
    return items_;
  }
  size_t num_sources() const { return num_sources_; }
  void set_num_sources(size_t n) { num_sources_ = n; }

  /// Total number of claims across items.
  size_t num_claims() const;

  void AddItem(DataItem item) {
    index_.reset();
    items_.push_back(std::move(item));
  }

  /// The interned-value view, built lazily on first use and cached until
  /// the items are mutated. The first call from several threads at once is
  /// not synchronized; fusion methods obtain it before fanning out.
  const ValueIndex& value_index() const;

 private:
  std::vector<DataItem> items_;
  size_t num_sources_ = 0;
  /// shared_ptr so ClaimDb stays copyable; copies share the immutable
  /// index until either side mutates its items.
  mutable std::shared_ptr<const ValueIndex> index_;
};

}  // namespace bdi::fusion

#endif  // BDI_FUSION_CLAIMS_H_
