#include "bdi/fusion/fusion.h"

#include <map>

#include "bdi/common/logging.h"

namespace bdi::fusion {

namespace {

/// Picks the max-weight value (lexicographically smallest among ties) and
/// its share of the total weight.
std::pair<std::string, double> ArgmaxValue(
    const std::map<std::string, double>& weights) {
  std::string best;
  double best_weight = -1.0, total = 0.0;
  for (const auto& [value, weight] : weights) {
    total += weight;
    if (weight > best_weight) {
      best_weight = weight;
      best = value;
    }
  }
  double share = total > 0.0 ? best_weight / total : 0.0;
  return {best, share};
}

FusionResult ResolveByWeights(const ClaimDb& db,
                              const std::vector<double>& source_weight) {
  FusionResult result;
  result.chosen.resize(db.items().size());
  result.confidence.resize(db.items().size(), 0.0);
  std::vector<double> agree(db.num_sources(), 0.0);
  std::vector<double> seen(db.num_sources(), 0.0);
  for (size_t i = 0; i < db.items().size(); ++i) {
    const DataItem& item = db.items()[i];
    std::map<std::string, double> weights;
    for (const Claim& claim : item.claims) {
      double w = claim.source < static_cast<SourceId>(source_weight.size())
                     ? source_weight[claim.source]
                     : 1.0;
      weights[claim.value] += w;
    }
    auto [best, share] = ArgmaxValue(weights);
    result.chosen[i] = best;
    result.confidence[i] = share;
    for (const Claim& claim : item.claims) {
      seen[claim.source] += 1.0;
      if (claim.value == best) agree[claim.source] += 1.0;
    }
  }
  result.source_accuracy.resize(db.num_sources(), 0.0);
  for (size_t s = 0; s < db.num_sources(); ++s) {
    result.source_accuracy[s] = seen[s] > 0.0 ? agree[s] / seen[s] : 0.0;
  }
  result.iterations = 1;
  return result;
}

}  // namespace

FusionResult VoteFusion::Resolve(const ClaimDb& db) const {
  return ResolveByWeights(db, std::vector<double>(db.num_sources(), 1.0));
}

FusionResult WeightedVoteFusion::Resolve(const ClaimDb& db) const {
  BDI_CHECK(weights_.size() >= db.num_sources())
      << "weighted vote needs one weight per source";
  return ResolveByWeights(db, weights_);
}

}  // namespace bdi::fusion
