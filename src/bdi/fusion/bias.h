#ifndef BDI_FUSION_BIAS_H_
#define BDI_FUSION_BIAS_H_

#include <vector>

#include "bdi/fusion/fusion.h"

namespace bdi::fusion {

/// A detected systematic numeric bias of one source on one attribute:
/// mean signed relative deviation of its claims from the consensus value.
/// Deceitful "spec inflation" shows up as a consistently positive bias —
/// invisible to the random-error accuracy model and to copy detection.
struct SourceBias {
  SourceId source = kInvalidSource;
  int attr = -1;
  double relative_bias = 0.0;  ///< +0.25 = claims run 25% above consensus
  double dispersion = 0.0;     ///< stddev of the deviations (consistency)
  size_t items = 0;
};

struct BiasDetectionConfig {
  /// Minimum numeric items a (source, attr) needs before it is scored.
  size_t min_items = 5;
  /// |mean deviation| must exceed this to be reported.
  double min_bias = 0.08;
  /// A lie is *consistent*: dispersion must stay below this fraction of
  /// the bias magnitude (separates deceit from ordinary noise).
  double max_dispersion_ratio = 0.8;
};

/// Scores every (source, attribute) pair of the claim database against the
/// reference resolution (e.g. an Accu run) and returns the consistent
/// outliers, strongest first.
std::vector<SourceBias> DetectBias(const ClaimDb& db,
                                   const FusionResult& reference,
                                   const BiasDetectionConfig& config = {});

/// Returns a copy of `db` with the detected biases corrected: claims of a
/// flagged (source, attr) are divided by (1 + bias). Re-running fusion on
/// the corrected database lets the previously-poisoned items resolve.
ClaimDb DebiasClaims(const ClaimDb& db,
                     const std::vector<SourceBias>& biases);

}  // namespace bdi::fusion

#endif  // BDI_FUSION_BIAS_H_
