#include "bdi/fusion/bias.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "bdi/common/logging.h"
#include "bdi/common/string_util.h"

namespace bdi::fusion {

std::vector<SourceBias> DetectBias(const ClaimDb& db,
                                   const FusionResult& reference,
                                   const BiasDetectionConfig& config) {
  BDI_CHECK(reference.chosen.size() == db.items().size());
  // (source, attr) -> signed relative deviations from the consensus.
  std::map<std::pair<SourceId, int>, std::vector<double>> deviations;
  for (size_t i = 0; i < db.items().size(); ++i) {
    const DataItem& item = db.items()[i];
    double consensus = 0.0;
    if (!ParseLeadingDouble(reference.chosen[i], &consensus, nullptr) ||
        consensus == 0.0) {
      continue;
    }
    for (const Claim& claim : item.claims) {
      double value = 0.0;
      if (!ParseLeadingDouble(claim.value, &value, nullptr)) continue;
      deviations[{claim.source, item.attr}].push_back(
          (value - consensus) / consensus);
    }
  }

  std::vector<SourceBias> biases;
  for (const auto& [key, devs] : deviations) {
    if (devs.size() < config.min_items) continue;
    double mean = 0.0;
    for (double d : devs) mean += d;
    mean /= static_cast<double>(devs.size());
    if (std::abs(mean) < config.min_bias) continue;
    double var = 0.0;
    for (double d : devs) var += (d - mean) * (d - mean);
    double dispersion = std::sqrt(var / static_cast<double>(devs.size()));
    if (dispersion > config.max_dispersion_ratio * std::abs(mean)) {
      continue;  // noisy, not a consistent lie
    }
    SourceBias bias;
    bias.source = key.first;
    bias.attr = key.second;
    bias.relative_bias = mean;
    bias.dispersion = dispersion;
    bias.items = devs.size();
    biases.push_back(bias);
  }
  std::sort(biases.begin(), biases.end(),
            [](const SourceBias& a, const SourceBias& b) {
              return std::abs(a.relative_bias) > std::abs(b.relative_bias);
            });
  return biases;
}

ClaimDb DebiasClaims(const ClaimDb& db,
                     const std::vector<SourceBias>& biases) {
  std::map<std::pair<SourceId, int>, double> correction;
  for (const SourceBias& bias : biases) {
    if (bias.relative_bias > -0.95) {
      correction[{bias.source, bias.attr}] = 1.0 + bias.relative_bias;
    }
  }
  ClaimDb out;
  out.set_num_sources(db.num_sources());
  for (const DataItem& item : db.items()) {
    DataItem copy = item;
    for (Claim& claim : copy.claims) {
      auto it = correction.find({claim.source, item.attr});
      if (it == correction.end()) continue;
      double value = 0.0;
      if (!ParseLeadingDouble(claim.value, &value, nullptr)) continue;
      claim.value = FormatDouble(value / it->second, 2);
    }
    out.AddItem(std::move(copy));
  }
  return out;
}

}  // namespace bdi::fusion
