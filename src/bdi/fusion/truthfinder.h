#ifndef BDI_FUSION_TRUTHFINDER_H_
#define BDI_FUSION_TRUTHFINDER_H_

#include "bdi/fusion/fusion.h"

namespace bdi::fusion {

struct TruthFinderConfig {
  double initial_trust = 0.9;
  int max_iterations = 20;
  double epsilon = 1e-4;
  /// Influence of similar values on each other's confidence.
  double rho = 0.3;
  /// Dampening factor in the logistic confidence transform.
  double gamma = 0.3;
  double min_trust = 0.01;
  double max_trust = 0.99;
};

/// TruthFinder (Yin, Han, Yu, KDD'07): iteratively propagates source
/// trustworthiness to value confidence (with inter-value similarity
/// influence) and back.
class TruthFinderFusion : public FusionMethod {
 public:
  explicit TruthFinderFusion(const TruthFinderConfig& config = {})
      : config_(config) {}

  FusionResult Resolve(const ClaimDb& db) const override;
  std::string name() const override { return "truthfinder"; }

 private:
  TruthFinderConfig config_;
};

}  // namespace bdi::fusion

#endif  // BDI_FUSION_TRUTHFINDER_H_
