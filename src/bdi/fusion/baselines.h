#ifndef BDI_FUSION_BASELINES_H_
#define BDI_FUSION_BASELINES_H_

#include "bdi/fusion/fusion.h"

namespace bdi::fusion {

/// 2-Estimates (Galland et al., WSDM'10): complement-aware iterative
/// voting. A source claiming v for an item implicitly votes *against*
/// every other claimed value of that item; value truth scores and source
/// error rates are re-estimated alternately, with the scores re-normalized
/// to [0,1] each round (the paper's "normalization by spreading").
struct TwoEstimatesConfig {
  int max_iterations = 20;
  double epsilon = 1e-4;
  double initial_error = 0.2;
};

class TwoEstimatesFusion : public FusionMethod {
 public:
  explicit TwoEstimatesFusion(const TwoEstimatesConfig& config = {})
      : config_(config) {}

  FusionResult Resolve(const ClaimDb& db) const override;
  std::string name() const override { return "2-estimates"; }

 private:
  TwoEstimatesConfig config_;
};

/// PooledInvestment (Pasternack & Roth, COLING'10): each source spreads a
/// unit of trust over its claims; a claim's pooled credit is the sum of
/// its investors' per-claim stakes, amplified by a superlinear growth
/// function and paid back proportionally.
struct PooledInvestmentConfig {
  int max_iterations = 20;
  double epsilon = 1e-4;
  /// Exponent of the credit growth function G(x) = x^g.
  double growth = 1.4;
};

class PooledInvestmentFusion : public FusionMethod {
 public:
  explicit PooledInvestmentFusion(const PooledInvestmentConfig& config = {})
      : config_(config) {}

  FusionResult Resolve(const ClaimDb& db) const override;
  std::string name() const override { return "pooled-investment"; }

 private:
  PooledInvestmentConfig config_;
};

}  // namespace bdi::fusion

#endif  // BDI_FUSION_BASELINES_H_
