#include "bdi/fusion/truthfinder.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "bdi/fusion/accu.h"

namespace bdi::fusion {

FusionResult TruthFinderFusion::Resolve(const ClaimDb& db) const {
  const std::vector<DataItem>& items = db.items();
  size_t num_sources = db.num_sources();
  FusionResult result;
  result.chosen.resize(items.size());
  result.confidence.resize(items.size(), 0.0);
  result.source_accuracy.assign(num_sources, config_.initial_trust);

  std::vector<double> next_trust(num_sources, 0.0);
  std::vector<double> claim_count(num_sources, 0.0);

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::fill(next_trust.begin(), next_trust.end(), 0.0);
    std::fill(claim_count.begin(), claim_count.end(), 0.0);

    for (size_t i = 0; i < items.size(); ++i) {
      const DataItem& item = items[i];
      if (item.claims.empty()) continue;

      // sigma(v) = sum of tau(s) = -ln(1 - t(s)) over supporting sources.
      std::map<std::string, double> sigma;
      for (const Claim& claim : item.claims) {
        double trust = std::clamp(result.source_accuracy[claim.source],
                                  config_.min_trust, config_.max_trust);
        sigma[claim.value] += -std::log(1.0 - trust);
      }
      // Similarity adjustment.
      std::map<std::string, double> adjusted;
      for (const auto& [value, s] : sigma) {
        double boost = 0.0;
        for (const auto& [other, other_sigma] : sigma) {
          if (other == value) continue;
          boost += ClaimValueSimilarity(value, other) * other_sigma;
        }
        adjusted[value] = s + config_.rho * boost;
      }
      // Confidence via dampened logistic.
      std::string best;
      double best_confidence = -1.0;
      std::map<std::string, double> confidence;
      for (const auto& [value, s] : adjusted) {
        double c = 1.0 / (1.0 + std::exp(-config_.gamma * s));
        confidence[value] = c;
        if (c > best_confidence) {
          best_confidence = c;
          best = value;
        }
      }
      result.chosen[i] = best;
      result.confidence[i] = best_confidence;

      for (const Claim& claim : item.claims) {
        next_trust[claim.source] += confidence[claim.value];
        claim_count[claim.source] += 1.0;
      }
    }

    double max_delta = 0.0;
    for (size_t s = 0; s < num_sources; ++s) {
      double updated = claim_count[s] > 0.0 ? next_trust[s] / claim_count[s]
                                            : config_.initial_trust;
      updated = std::clamp(updated, config_.min_trust, config_.max_trust);
      max_delta = std::max(max_delta,
                           std::abs(updated - result.source_accuracy[s]));
      result.source_accuracy[s] = updated;
    }
    if (max_delta < config_.epsilon) break;
  }
  return result;
}

}  // namespace bdi::fusion
