#include "bdi/fusion/evaluation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "bdi/common/logging.h"
#include "bdi/common/string_util.h"
#include "bdi/schema/units.h"

namespace bdi::fusion {

bool ValuesMatch(const std::string& a, const std::string& b,
                 double numeric_tolerance) {
  if (a == b) return true;
  if (numeric_tolerance <= 0.0) return false;
  double va = 0.0, vb = 0.0;
  std::string ua, ub;
  if (!ParseLeadingDouble(a, &va, &ua) || !ParseLeadingDouble(b, &vb, &ub)) {
    return false;
  }
  if (ua != ub) return false;
  double denominator = std::max({std::abs(va), std::abs(vb), 1e-9});
  return std::abs(va - vb) / denominator <= numeric_tolerance;
}

bool ValuesMatchUnitTolerant(const std::string& a, const std::string& b,
                             double numeric_tolerance) {
  if (ValuesMatch(a, b, numeric_tolerance)) return true;
  double va = 0.0, vb = 0.0;
  std::string ua, ub;
  if (!ParseLeadingDouble(a, &va, &ua) || !ParseLeadingDouble(b, &vb, &ub)) {
    return false;
  }
  if (va <= 0.0 || vb <= 0.0) return false;
  double snapped = schema::SnapScale(va / vb, numeric_tolerance + 0.01);
  return snapped != 1.0 && schema::IsKnownUnitConversion(snapped);
}

FusionQuality EvaluateFusion(const ClaimDb& db, const FusionResult& result,
                             const GroundTruth& truth,
                             double numeric_tolerance) {
  BDI_CHECK(result.chosen.size() == db.items().size());
  FusionQuality quality;
  for (size_t i = 0; i < db.items().size(); ++i) {
    const DataItem& item = db.items()[i];
    if (item.entity < 0 ||
        static_cast<size_t>(item.entity) >= truth.true_values.size()) {
      continue;
    }
    const std::vector<std::string>& values = truth.true_values[item.entity];
    if (item.attr < 0 || static_cast<size_t>(item.attr) >= values.size()) {
      continue;
    }
    const std::string& expected = values[item.attr];
    if (expected.empty()) continue;
    ++quality.evaluated_items;
    if (ValuesMatch(result.chosen[i], expected, numeric_tolerance)) {
      ++quality.correct_items;
    }
  }
  quality.precision =
      quality.evaluated_items == 0
          ? 0.0
          : static_cast<double>(quality.correct_items) /
                static_cast<double>(quality.evaluated_items);
  return quality;
}

double AccuracyEstimationError(const FusionResult& result,
                               const GroundTruth& truth) {
  std::set<SourceId> copiers;
  for (const CopyEdge& edge : truth.copy_edges) copiers.insert(edge.copier);
  double total = 0.0;
  size_t count = 0;
  size_t n = std::min(result.source_accuracy.size(),
                      truth.source_accuracy.size());
  for (size_t s = 0; s < n; ++s) {
    if (copiers.count(static_cast<SourceId>(s)) > 0) continue;
    total += std::abs(result.source_accuracy[s] - truth.source_accuracy[s]);
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

CalibrationReport EvaluateCalibration(const ClaimDb& db,
                                      const FusionResult& result,
                                      const GroundTruth& truth,
                                      size_t num_buckets,
                                      double numeric_tolerance) {
  BDI_CHECK(num_buckets >= 1);
  CalibrationReport report;
  report.buckets.resize(num_buckets);
  std::vector<double> confidence_sum(num_buckets, 0.0);
  std::vector<size_t> correct(num_buckets, 0);
  for (size_t b = 0; b < num_buckets; ++b) {
    report.buckets[b].lower =
        static_cast<double>(b) / static_cast<double>(num_buckets);
    report.buckets[b].upper =
        static_cast<double>(b + 1) / static_cast<double>(num_buckets);
  }
  size_t total = 0;
  for (size_t i = 0; i < db.items().size(); ++i) {
    const DataItem& item = db.items()[i];
    if (item.entity < 0 ||
        static_cast<size_t>(item.entity) >= truth.true_values.size() ||
        item.attr < 0 ||
        static_cast<size_t>(item.attr) >=
            truth.true_values[item.entity].size()) {
      continue;
    }
    const std::string& expected =
        truth.true_values[item.entity][item.attr];
    if (expected.empty()) continue;
    double confidence = std::clamp(result.confidence[i], 0.0, 1.0);
    size_t bucket = std::min(
        num_buckets - 1,
        static_cast<size_t>(confidence * static_cast<double>(num_buckets)));
    ++report.buckets[bucket].items;
    confidence_sum[bucket] += confidence;
    if (ValuesMatch(result.chosen[i], expected, numeric_tolerance)) {
      ++correct[bucket];
    }
    ++total;
  }
  double ece = 0.0;
  for (size_t b = 0; b < num_buckets; ++b) {
    CalibrationBucket& bucket = report.buckets[b];
    if (bucket.items == 0) continue;
    bucket.mean_confidence =
        confidence_sum[b] / static_cast<double>(bucket.items);
    bucket.empirical_accuracy = static_cast<double>(correct[b]) /
                                static_cast<double>(bucket.items);
    ece += static_cast<double>(bucket.items) *
           std::abs(bucket.mean_confidence - bucket.empirical_accuracy);
  }
  report.expected_calibration_error =
      total == 0 ? 0.0 : ece / static_cast<double>(total);
  return report;
}

CopyDetectionQuality EvaluateCopyDetection(
    const std::vector<SourceDependence>& dependencies,
    const GroundTruth& truth, double threshold) {
  CopyDetectionQuality quality;
  std::set<std::pair<SourceId, SourceId>> true_pairs;
  for (const CopyEdge& edge : truth.copy_edges) {
    true_pairs.insert({std::min(edge.copier, edge.original),
                       std::max(edge.copier, edge.original)});
  }
  quality.true_edges = true_pairs.size();
  for (const SourceDependence& d : dependencies) {
    if (d.probability < threshold) continue;
    ++quality.detected;
    if (true_pairs.count({std::min(d.a, d.b), std::max(d.a, d.b)}) > 0) {
      ++quality.correct;
    }
  }
  quality.precision = quality.detected == 0
                          ? 0.0
                          : static_cast<double>(quality.correct) /
                                static_cast<double>(quality.detected);
  quality.recall = quality.true_edges == 0
                       ? 1.0
                       : static_cast<double>(quality.correct) /
                             static_cast<double>(quality.true_edges);
  quality.f1 = quality.precision + quality.recall == 0.0
                   ? 0.0
                   : 2.0 * quality.precision * quality.recall /
                         (quality.precision + quality.recall);
  return quality;
}

PipelineMappings MapPipelineToTruth(const linkage::EntityClusters& clusters,
                                    const schema::MediatedSchema& schema,
                                    const GroundTruth& truth) {
  PipelineMappings mappings;

  // Majority entity per linkage cluster.
  std::vector<std::unordered_map<EntityId, size_t>> entity_votes(
      clusters.num_clusters);
  for (size_t r = 0; r < clusters.label_of_record.size() &&
                     r < truth.entity_of_record.size();
       ++r) {
    ++entity_votes[clusters.label_of_record[r]][truth.entity_of_record[r]];
  }
  mappings.entity_of_cluster.assign(clusters.num_clusters, kInvalidEntity);
  for (size_t c = 0; c < clusters.num_clusters; ++c) {
    size_t best = 0;
    for (const auto& [entity, votes] : entity_votes[c]) {
      if (votes > best) {
        best = votes;
        mappings.entity_of_cluster[c] = entity;
      }
    }
  }

  // Majority canonical attribute per schema cluster.
  mappings.canonical_of_schema_cluster.assign(schema.clusters.size(), -1);
  for (size_t c = 0; c < schema.clusters.size(); ++c) {
    std::map<int, size_t> votes;
    for (const SourceAttr& sa : schema.clusters[c]) {
      auto it = truth.canonical_of_source_attr.find(sa);
      if (it != truth.canonical_of_source_attr.end()) {
        ++votes[it->second];
      }
    }
    size_t best = 0;
    for (const auto& [canonical, count] : votes) {
      if (count > best) {
        best = count;
        mappings.canonical_of_schema_cluster[c] = canonical;
      }
    }
  }
  return mappings;
}

FusionQuality EvaluateFusionMapped(const ClaimDb& db,
                                   const FusionResult& result,
                                   const PipelineMappings& mappings,
                                   const GroundTruth& truth,
                                   double numeric_tolerance) {
  BDI_CHECK(result.chosen.size() == db.items().size());
  FusionQuality quality;
  for (size_t i = 0; i < db.items().size(); ++i) {
    const DataItem& item = db.items()[i];
    if (item.entity < 0 ||
        static_cast<size_t>(item.entity) >=
            mappings.entity_of_cluster.size() ||
        item.attr < 0 ||
        static_cast<size_t>(item.attr) >=
            mappings.canonical_of_schema_cluster.size()) {
      continue;
    }
    EntityId entity = mappings.entity_of_cluster[item.entity];
    int canonical = mappings.canonical_of_schema_cluster[item.attr];
    if (entity == kInvalidEntity || canonical < 0) continue;
    const std::vector<std::string>& values = truth.true_values[entity];
    if (static_cast<size_t>(canonical) >= values.size()) continue;
    const std::string& expected = values[canonical];
    if (expected.empty()) continue;
    ++quality.evaluated_items;
    if (ValuesMatchUnitTolerant(result.chosen[i], ToLower(expected),
                                numeric_tolerance)) {
      ++quality.correct_items;
    }
  }
  quality.precision =
      quality.evaluated_items == 0
          ? 0.0
          : static_cast<double>(quality.correct_items) /
                static_cast<double>(quality.evaluated_items);
  return quality;
}

}  // namespace bdi::fusion
