#ifndef BDI_FUSION_EVALUATION_H_
#define BDI_FUSION_EVALUATION_H_

#include <string>
#include <vector>

#include "bdi/fusion/copy_detection.h"
#include "bdi/fusion/fusion.h"
#include "bdi/linkage/clustering.h"
#include "bdi/model/ground_truth.h"
#include "bdi/schema/mediated_schema.h"

namespace bdi::fusion {

/// Correctness of resolved values on items whose truth is known.
struct FusionQuality {
  double precision = 0.0;
  size_t evaluated_items = 0;
  size_t correct_items = 0;
};

/// Value comparison used throughout fusion evaluation: exact string match,
/// or — when both parse as numbers — relative difference <= tolerance.
bool ValuesMatch(const std::string& a, const std::string& b,
                 double numeric_tolerance);

/// Like ValuesMatch but additionally accepts numeric values that agree
/// after a known unit conversion (cm vs inch, g vs oz, ...). The pipeline
/// normalizes each attribute cluster to its *dominant published* unit,
/// which can legitimately differ from the ground truth's unit; a value
/// that is exactly the truth in another unit is correct information.
bool ValuesMatchUnitTolerant(const std::string& a, const std::string& b,
                             double numeric_tolerance);

/// Evaluates a result over a ClaimDb built with ClaimDb::FromGroundTruth
/// (item ids are truth entity ids / canonical attribute indices).
FusionQuality EvaluateFusion(const ClaimDb& db, const FusionResult& result,
                             const GroundTruth& truth,
                             double numeric_tolerance = 0.01);

/// Mean absolute error of the estimated source accuracies against the
/// generator's configured accuracies, over independent (non-copier)
/// sources.
double AccuracyEstimationError(const FusionResult& result,
                               const GroundTruth& truth);

/// One bucket of a reliability diagram: items whose reported confidence
/// fell into [lower, upper), their mean confidence, and the fraction that
/// were actually correct. A calibrated model has accuracy ≈ confidence in
/// every bucket.
struct CalibrationBucket {
  double lower = 0.0;
  double upper = 0.0;
  double mean_confidence = 0.0;
  double empirical_accuracy = 0.0;
  size_t items = 0;
};

struct CalibrationReport {
  std::vector<CalibrationBucket> buckets;
  /// Expected calibration error: item-weighted mean |confidence - accuracy|.
  double expected_calibration_error = 0.0;
};

/// Buckets a truth-keyed fusion result's confidences against correctness
/// (ground-truth-built ClaimDb, like EvaluateFusion).
CalibrationReport EvaluateCalibration(const ClaimDb& db,
                                      const FusionResult& result,
                                      const GroundTruth& truth,
                                      size_t num_buckets = 10,
                                      double numeric_tolerance = 0.01);

/// Copy-detection quality: an unordered pair counts as detected when its
/// dependence probability >= threshold; truth pairs are the generator's
/// copy edges.
struct CopyDetectionQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t detected = 0;
  size_t true_edges = 0;
  size_t correct = 0;
};

CopyDetectionQuality EvaluateCopyDetection(
    const std::vector<SourceDependence>& dependencies,
    const GroundTruth& truth, double threshold = 0.5);

/// Majority mappings from pipeline ids to truth ids, for evaluating fusion
/// over a ClaimDb built with ClaimDb::FromPipeline.
struct PipelineMappings {
  /// linkage cluster -> majority truth entity (kInvalidEntity if empty).
  std::vector<EntityId> entity_of_cluster;
  /// mediated-schema cluster -> majority canonical attribute (-1 if none).
  std::vector<int> canonical_of_schema_cluster;
};

PipelineMappings MapPipelineToTruth(const linkage::EntityClusters& clusters,
                                    const schema::MediatedSchema& schema,
                                    const GroundTruth& truth);

/// Evaluates a pipeline-built ClaimDb result by translating item ids
/// through the majority mappings. Items whose cluster maps to no entity or
/// whose attribute maps to no canonical attribute are skipped (they still
/// dilute end-to-end recall, reported separately by the caller).
FusionQuality EvaluateFusionMapped(const ClaimDb& db,
                                   const FusionResult& result,
                                   const PipelineMappings& mappings,
                                   const GroundTruth& truth,
                                   double numeric_tolerance = 0.02);

}  // namespace bdi::fusion

#endif  // BDI_FUSION_EVALUATION_H_
