#ifndef BDI_FUSION_FUSION_H_
#define BDI_FUSION_FUSION_H_

#include <string>
#include <vector>

#include "bdi/fusion/claims.h"

namespace bdi::fusion {

/// Output of a fusion method: one resolved value per ClaimDb item (parallel
/// to ClaimDb::items()) plus the model's source-quality estimates.
struct FusionResult {
  std::vector<std::string> chosen;      ///< "" when an item had no claims
  std::vector<double> confidence;       ///< probability of the chosen value
  std::vector<double> source_accuracy;  ///< estimated, one per source
  int iterations = 0;
};

/// Truth-discovery interface: resolve every item of a claim database.
class FusionMethod {
 public:
  virtual ~FusionMethod() = default;
  virtual FusionResult Resolve(const ClaimDb& db) const = 0;
  virtual std::string name() const = 0;
};

/// Majority vote; ties broken lexicographically (deterministic). Source
/// accuracy estimates are the post-hoc agreement rates with the vote.
class VoteFusion : public FusionMethod {
 public:
  FusionResult Resolve(const ClaimDb& db) const override;
  std::string name() const override { return "vote"; }
};

/// Vote with fixed external source weights (e.g. from a quality oracle).
class WeightedVoteFusion : public FusionMethod {
 public:
  explicit WeightedVoteFusion(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  FusionResult Resolve(const ClaimDb& db) const override;
  std::string name() const override { return "weighted-vote"; }

 private:
  std::vector<double> weights_;
};

}  // namespace bdi::fusion

#endif  // BDI_FUSION_FUSION_H_
