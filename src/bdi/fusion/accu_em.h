#ifndef BDI_FUSION_ACCU_EM_H_
#define BDI_FUSION_ACCU_EM_H_

#include <cstdint>
#include <vector>

#include "bdi/fusion/claims.h"

namespace bdi::fusion::internal {

/// Shared machinery of the Accu-family EM loops (Accu, AccuSim, AccuCopy),
/// operating on the ClaimDb's interned ValueIndex: per-item vote tables are
/// flat vectors indexed by local value id, in the same lexicographic order
/// the former string-keyed maps iterated in, so results are bitwise
/// identical to the historical serial implementations.
///
/// Parallel determinism contract: the per-item E step (scores -> softmax ->
/// per-claim probabilities) is computed independently per item and may run
/// on any thread; the M step (accuracy accumulation) always runs serially
/// in item order over the stored per-claim probabilities. Chosen values and
/// accuracies are therefore identical for every thread count.

/// Per-item pairwise value-similarity matrices for AccuSim smoothing,
/// computed once per Resolve and reused across EM iterations (the
/// similarities depend only on the claimed strings). Items with fewer than
/// two distinct values occupy no space.
struct SimilarityCache {
  std::vector<double> sims;     ///< flat d_i x d_i blocks
  std::vector<size_t> offset;   ///< items+1 prefix offsets into `sims`

  double At(size_t item, size_t a, size_t b, size_t d) const {
    return sims[offset[item] + a * d + b];
  }
};

/// Builds the cache in parallel (`num_threads` semantics as in
/// Executor::ParallelFor).
SimilarityCache BuildSimilarityCache(const ClaimDb& db, size_t num_threads);

/// Per-source log-odds ln(n_false * A / (1 - A)) with A clamped to
/// [min_accuracy, max_accuracy]; recomputed each EM iteration.
void ComputeLogOdds(const std::vector<double>& source_accuracy,
                    double n_false_values, double min_accuracy,
                    double max_accuracy, std::vector<double>* log_odds);

/// Finishes one item's E step: applies AccuSim smoothing to `score` (when
/// rho > 0 and the item has > 1 distinct values), softmaxes, writes each
/// claim's value probability into its flat slot of `claim_probability`,
/// and records the argmax local id and its probability.
///
/// `score` holds the item's per-distinct-value votes on entry and is
/// clobbered; `scratch` is caller-provided reusable storage.
void FinishItem(const ValueIndex& vi, size_t item, double rho,
                const SimilarityCache& sim_cache, std::vector<double>& score,
                std::vector<double>& scratch,
                std::vector<double>& claim_probability,
                uint32_t* best_local, double* best_probability);

/// Serial M step: folds the per-claim probabilities into per-source
/// accuracy estimates (mean claim probability, clamped), in item order.
/// Returns the max absolute accuracy change (the EM convergence signal).
double UpdateAccuracies(const ClaimDb& db, const ValueIndex& vi,
                        const std::vector<double>& claim_probability,
                        double initial_accuracy, double min_accuracy,
                        double max_accuracy,
                        std::vector<double>* source_accuracy,
                        std::vector<double>* next_accuracy,
                        std::vector<double>* claim_count);

}  // namespace bdi::fusion::internal

#endif  // BDI_FUSION_ACCU_EM_H_
