#ifndef BDI_FUSION_ACCU_COPY_H_
#define BDI_FUSION_ACCU_COPY_H_

#include "bdi/fusion/accu.h"
#include "bdi/fusion/copy_detection.h"

namespace bdi::fusion {

struct AccuCopyConfig {
  AccuConfig accu;
  CopyDetectionConfig copy;
  /// Outer iterations alternating copy detection and accuracy estimation.
  int max_outer_iterations = 5;
};

/// AccuCopy (the full VLDB'09 model): alternates Bayesian copy detection
/// with accuracy-aware truth discovery, discounting votes of sources whose
/// claims are probably copied. Independent sources keep full weight; a
/// source repeating a value already counted from a probable original
/// contributes only its residual independence probability.
class AccuCopyFusion : public FusionMethod {
 public:
  explicit AccuCopyFusion(const AccuCopyConfig& config = {})
      : config_(config) {}

  FusionResult Resolve(const ClaimDb& db) const override;
  std::string name() const override { return "accucopy"; }

  /// The dependencies detected in the last Resolve call (for evaluation).
  const std::vector<SourceDependence>& last_dependencies() const {
    return last_dependencies_;
  }

 private:
  AccuCopyConfig config_;
  mutable std::vector<SourceDependence> last_dependencies_;
};

}  // namespace bdi::fusion

#endif  // BDI_FUSION_ACCU_COPY_H_
