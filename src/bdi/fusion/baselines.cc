#include "bdi/fusion/baselines.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace bdi::fusion {

namespace {

/// Chooses per item the value with the highest truth score; fills chosen/
/// confidence from the (item -> value -> score) table.
void ChooseBest(const ClaimDb& db,
                const std::vector<std::map<std::string, double>>& scores,
                FusionResult* result) {
  for (size_t i = 0; i < db.items().size(); ++i) {
    std::string best;
    double best_score = -1e300, total = 0.0;
    for (const auto& [value, score] : scores[i]) {
      total += std::max(0.0, score);
      if (score > best_score) {
        best_score = score;
        best = value;
      }
    }
    result->chosen[i] = best;
    result->confidence[i] =
        total > 0.0 ? std::max(0.0, best_score) / total : 0.0;
  }
}

}  // namespace

FusionResult TwoEstimatesFusion::Resolve(const ClaimDb& db) const {
  const std::vector<DataItem>& items = db.items();
  size_t num_sources = db.num_sources();
  FusionResult result;
  result.chosen.resize(items.size());
  result.confidence.resize(items.size(), 0.0);
  // Track error rates; accuracy = 1 - error.
  std::vector<double> error(num_sources, config_.initial_error);

  // Truth score per (item, value) in [0, 1].
  std::vector<std::map<std::string, double>> truth(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    for (const Claim& claim : items[i].claims) {
      truth[i][claim.value] = 0.5;
    }
  }

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // 1. Value scores from source errors: positive votes from claimants,
    // negative votes from sources claiming a different value.
    double min_score = 1e300, max_score = -1e300;
    for (size_t i = 0; i < items.size(); ++i) {
      for (auto& [value, score] : truth[i]) {
        double total = 0.0, votes = 0.0;
        for (const Claim& claim : items[i].claims) {
          if (claim.value == value) {
            total += 1.0 - error[claim.source];
          } else {
            total += error[claim.source];
          }
          votes += 1.0;
        }
        score = votes > 0.0 ? total / votes : 0.5;
        min_score = std::min(min_score, score);
        max_score = std::max(max_score, score);
      }
    }
    // Normalization by spreading to the full [0, 1].
    double range = max_score - min_score;
    if (range > 1e-12) {
      for (auto& item_scores : truth) {
        for (auto& [value, score] : item_scores) {
          score = (score - min_score) / range;
        }
      }
    }

    // 2. Source errors from value scores: a source's error is the mean of
    // (1 - score of what it claimed) and (score of what it contradicted is
    // folded in through the complement in step 1).
    std::vector<double> next_error(num_sources, 0.0);
    std::vector<double> counts(num_sources, 0.0);
    for (size_t i = 0; i < items.size(); ++i) {
      for (const Claim& claim : items[i].claims) {
        next_error[claim.source] += 1.0 - truth[i][claim.value];
        counts[claim.source] += 1.0;
      }
    }
    double max_delta = 0.0;
    for (size_t s = 0; s < num_sources; ++s) {
      double updated = counts[s] > 0.0 ? next_error[s] / counts[s]
                                       : config_.initial_error;
      updated = std::clamp(updated, 0.01, 0.99);
      max_delta = std::max(max_delta, std::abs(updated - error[s]));
      error[s] = updated;
    }
    if (max_delta < config_.epsilon) break;
  }

  ChooseBest(db, truth, &result);
  result.source_accuracy.resize(num_sources);
  for (size_t s = 0; s < num_sources; ++s) {
    result.source_accuracy[s] = 1.0 - error[s];
  }
  return result;
}

FusionResult PooledInvestmentFusion::Resolve(const ClaimDb& db) const {
  const std::vector<DataItem>& items = db.items();
  size_t num_sources = db.num_sources();
  FusionResult result;
  result.chosen.resize(items.size());
  result.confidence.resize(items.size(), 0.0);

  std::vector<double> trust(num_sources, 1.0);
  std::vector<double> claims_per_source(num_sources, 0.0);
  for (const DataItem& item : items) {
    for (const Claim& claim : item.claims) {
      claims_per_source[claim.source] += 1.0;
    }
  }

  std::vector<std::map<std::string, double>> credit(items.size());
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // 1. Each source invests trust/|claims| into each of its claims; a
    // value's pooled investment is the sum over investors.
    for (size_t i = 0; i < items.size(); ++i) {
      credit[i].clear();
      for (const Claim& claim : items[i].claims) {
        double stake = claims_per_source[claim.source] > 0.0
                           ? trust[claim.source] /
                                 claims_per_source[claim.source]
                           : 0.0;
        credit[i][claim.value] += stake;
      }
      // Superlinear growth, then renormalize the item's pool so the
      // grown credits pay out exactly what was invested.
      double invested = 0.0, grown = 0.0;
      for (auto& [value, c] : credit[i]) {
        invested += c;
        c = std::pow(c, config_.growth);
        grown += c;
      }
      if (grown > 1e-300) {
        for (auto& [value, c] : credit[i]) {
          c *= invested / grown;
        }
      }
    }

    // 2. Pay sources back proportionally to their stakes in each value.
    std::vector<double> next_trust(num_sources, 0.0);
    for (size_t i = 0; i < items.size(); ++i) {
      // Reconstruct each investor's share of the value's original pool.
      std::map<std::string, double> pool;
      for (const Claim& claim : items[i].claims) {
        double stake = claims_per_source[claim.source] > 0.0
                           ? trust[claim.source] /
                                 claims_per_source[claim.source]
                           : 0.0;
        pool[claim.value] += stake;
      }
      for (const Claim& claim : items[i].claims) {
        double stake = claims_per_source[claim.source] > 0.0
                           ? trust[claim.source] /
                                 claims_per_source[claim.source]
                           : 0.0;
        double share =
            pool[claim.value] > 1e-300 ? stake / pool[claim.value] : 0.0;
        next_trust[claim.source] += share * credit[i][claim.value];
      }
    }
    // Normalize trust to mean 1 (scale-free model).
    double total = 0.0;
    for (double t : next_trust) total += t;
    double scale =
        total > 1e-300 ? static_cast<double>(num_sources) / total : 1.0;
    double max_delta = 0.0;
    for (size_t s = 0; s < num_sources; ++s) {
      double updated = next_trust[s] * scale;
      max_delta = std::max(max_delta, std::abs(updated - trust[s]));
      trust[s] = updated;
    }
    if (max_delta < config_.epsilon) break;
  }

  ChooseBest(db, credit, &result);
  // Report trust rescaled into [0,1] as a pseudo-accuracy.
  double max_trust = 1e-300;
  for (double t : trust) max_trust = std::max(max_trust, t);
  result.source_accuracy.resize(num_sources);
  for (size_t s = 0; s < num_sources; ++s) {
    result.source_accuracy[s] = trust[s] / max_trust;
  }
  return result;
}

}  // namespace bdi::fusion
