#ifndef BDI_FUSION_ACCU_H_
#define BDI_FUSION_ACCU_H_

#include "bdi/fusion/fusion.h"

namespace bdi::fusion {

/// Configuration shared by the Accu family (Dong, Berti-Équille,
/// Srivastava, VLDB'09).
struct AccuConfig {
  /// Assumed number of uniformly-distributed false values per item.
  double n_false_values = 10.0;
  double initial_accuracy = 0.8;
  int max_iterations = 20;
  /// Stop when the max accuracy change drops below this.
  double epsilon = 1e-4;
  /// Accuracy clamp away from 0/1 keeps the log-odds finite.
  double min_accuracy = 0.01;
  double max_accuracy = 0.99;

  /// AccuSim: boost a value's score with similarity-weighted scores of the
  /// other claimed values (rho = 0 disables; this switches Accu -> AccuSim).
  double similarity_rho = 0.0;

  /// Parallelism of the per-item EM inner loop: 0 = the shared executor's
  /// full pool, 1 = serial. Chosen values and accuracies are identical for
  /// every setting (see accu_em.h's determinism contract).
  size_t num_threads = 0;
};

/// Bayesian truth discovery with iterative source-accuracy estimation:
/// value score = sum over supporting sources of ln(n·A/(1-A)); value
/// probabilities via softmax; source accuracy = mean probability of its
/// claims; iterate to fixpoint.
class AccuFusion : public FusionMethod {
 public:
  explicit AccuFusion(const AccuConfig& config = {}) : config_(config) {}

  FusionResult Resolve(const ClaimDb& db) const override;
  std::string name() const override {
    return config_.similarity_rho > 0.0 ? "accusim" : "accu";
  }

  const AccuConfig& config() const { return config_; }

 private:
  AccuConfig config_;
};

/// Similarity of two claimed values in [0,1] used by AccuSim and
/// TruthFinder: relative numeric closeness when both parse as numbers,
/// otherwise Jaro-Winkler.
double ClaimValueSimilarity(const std::string& a, const std::string& b);

}  // namespace bdi::fusion

#endif  // BDI_FUSION_ACCU_H_
