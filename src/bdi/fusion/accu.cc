#include "bdi/fusion/accu.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "bdi/text/similarity.h"

namespace bdi::fusion {

double ClaimValueSimilarity(const std::string& a, const std::string& b) {
  if (a == b) return 1.0;
  double numeric = text::NumericSimilarity(a, b);
  if (numeric > 0.0) return numeric;
  return text::JaroWinklerSimilarity(a, b);
}

FusionResult AccuFusion::Resolve(const ClaimDb& db) const {
  const std::vector<DataItem>& items = db.items();
  size_t num_sources = db.num_sources();
  FusionResult result;
  result.chosen.resize(items.size());
  result.confidence.resize(items.size(), 0.0);
  result.source_accuracy.assign(num_sources, config_.initial_accuracy);

  std::vector<double> next_accuracy(num_sources, 0.0);
  std::vector<double> claim_count(num_sources, 0.0);

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::fill(next_accuracy.begin(), next_accuracy.end(), 0.0);
    std::fill(claim_count.begin(), claim_count.end(), 0.0);

    for (size_t i = 0; i < items.size(); ++i) {
      const DataItem& item = items[i];
      if (item.claims.empty()) continue;

      // Log-odds vote count per distinct value.
      std::map<std::string, double> score;
      for (const Claim& claim : item.claims) {
        double accuracy =
            std::clamp(result.source_accuracy[claim.source],
                       config_.min_accuracy, config_.max_accuracy);
        score[claim.value] +=
            std::log(config_.n_false_values * accuracy / (1.0 - accuracy));
      }

      // AccuSim: similarity-smoothed scores.
      if (config_.similarity_rho > 0.0 && score.size() > 1) {
        std::map<std::string, double> adjusted;
        for (const auto& [value, base] : score) {
          double boost = 0.0;
          for (const auto& [other, other_score] : score) {
            if (other == value) continue;
            boost += ClaimValueSimilarity(value, other) * other_score;
          }
          adjusted[value] = base + config_.similarity_rho * boost;
        }
        score = std::move(adjusted);
      }

      // Softmax over claimed values (the unclaimed-false-value mass is
      // constant across values and cancels).
      double max_score = -1e300;
      for (const auto& [value, s] : score) max_score = std::max(max_score, s);
      double z = 0.0;
      for (const auto& [value, s] : score) z += std::exp(s - max_score);
      std::string best;
      double best_probability = -1.0;
      std::map<std::string, double> probability;
      for (const auto& [value, s] : score) {
        double p = std::exp(s - max_score) / z;
        probability[value] = p;
        if (p > best_probability) {
          best_probability = p;
          best = value;
        }
      }
      result.chosen[i] = best;
      result.confidence[i] = best_probability;

      for (const Claim& claim : item.claims) {
        next_accuracy[claim.source] += probability[claim.value];
        claim_count[claim.source] += 1.0;
      }
    }

    double max_delta = 0.0;
    for (size_t s = 0; s < num_sources; ++s) {
      double updated = claim_count[s] > 0.0
                           ? next_accuracy[s] / claim_count[s]
                           : config_.initial_accuracy;
      updated = std::clamp(updated, config_.min_accuracy,
                           config_.max_accuracy);
      max_delta = std::max(max_delta,
                           std::abs(updated - result.source_accuracy[s]));
      result.source_accuracy[s] = updated;
    }
    if (max_delta < config_.epsilon) break;
  }
  return result;
}

}  // namespace bdi::fusion
