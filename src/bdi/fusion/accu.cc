#include "bdi/fusion/accu.h"

#include <algorithm>
#include <cmath>

#include "bdi/common/executor.h"
#include "bdi/common/metrics.h"
#include "bdi/common/trace.h"
#include "bdi/fusion/accu_em.h"
#include "bdi/text/similarity.h"

namespace bdi::fusion {

namespace {

metrics::Counter& EmIterationsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.fusion.em.iterations");
  return *counter;
}

metrics::Histogram& EmDeltaHistogram() {
  // Per-iteration max accuracy change; the convergence criterion compares
  // against AccuConfig::epsilon (default 1e-4).
  static metrics::Histogram* histogram =
      metrics::Registry::Get().RegisterHistogram(
          "bdi.fusion.em.max_delta",
          {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0});
  return *histogram;
}

}  // namespace

double ClaimValueSimilarity(const std::string& a, const std::string& b) {
  if (a == b) return 1.0;
  double numeric = text::NumericSimilarity(a, b);
  if (numeric > 0.0) return numeric;
  return text::JaroWinklerSimilarity(a, b);
}

FusionResult AccuFusion::Resolve(const ClaimDb& db) const {
  trace::StageSpan span(config_.similarity_rho > 0.0 ? "accusim" : "accu");
  const std::vector<DataItem>& items = db.items();
  span.AddItems(items.size());
  const ValueIndex& vi = db.value_index();
  size_t num_sources = db.num_sources();
  FusionResult result;
  result.chosen.resize(items.size());
  result.confidence.resize(items.size(), 0.0);
  result.source_accuracy.assign(num_sources, config_.initial_accuracy);

  internal::SimilarityCache sim_cache;
  if (config_.similarity_rho > 0.0) {
    sim_cache = internal::BuildSimilarityCache(db, config_.num_threads);
  }

  std::vector<double> log_odds;
  std::vector<double> claim_probability(vi.num_claims(), 0.0);
  std::vector<uint32_t> chosen_local(items.size(), 0);
  std::vector<double> next_accuracy(num_sources, 0.0);
  std::vector<double> claim_count(num_sources, 0.0);

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    EmIterationsCounter().Add();
    internal::ComputeLogOdds(result.source_accuracy, config_.n_false_values,
                             config_.min_accuracy, config_.max_accuracy,
                             &log_odds);

    // E step, parallel over items: per-item vote table -> posterior.
    ParallelForRanges(
        items.size(),
        [&](size_t begin, size_t end) {
          std::vector<double> score, scratch;
          for (size_t i = begin; i < end; ++i) {
            const DataItem& item = items[i];
            if (item.claims.empty()) continue;
            score.assign(vi.ItemDistinctCount(i), 0.0);
            size_t slot = vi.claim_offset[i];
            for (const Claim& claim : item.claims) {
              score[vi.claim_local[slot++]] += log_odds[claim.source];
            }
            internal::FinishItem(vi, i, config_.similarity_rho, sim_cache,
                                 score, scratch, claim_probability,
                                 &chosen_local[i], &result.confidence[i]);
          }
        },
        config_.num_threads);

    // M step, serial in item order (deterministic for any thread count).
    double max_delta = internal::UpdateAccuracies(
        db, vi, claim_probability, config_.initial_accuracy,
        config_.min_accuracy, config_.max_accuracy, &result.source_accuracy,
        &next_accuracy, &claim_count);
    EmDeltaHistogram().Observe(max_delta);
    if (max_delta < config_.epsilon) break;
  }

  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].claims.empty()) continue;
    result.chosen[i] = vi.values[vi.DistinctValue(i, chosen_local[i])];
  }
  return result;
}

}  // namespace bdi::fusion
