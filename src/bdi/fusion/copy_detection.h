#ifndef BDI_FUSION_COPY_DETECTION_H_
#define BDI_FUSION_COPY_DETECTION_H_

#include <string>
#include <vector>

#include "bdi/fusion/claims.h"

namespace bdi::fusion {

struct CopyDetectionConfig {
  /// Prior probability of dependence between a random source pair.
  double alpha = 0.2;
  /// Assumed per-item copy probability of a copier.
  double copy_rate = 0.8;
  /// Assumed number of false values per item.
  double n_false_values = 10.0;
  /// Minimum common items before a pair is scored.
  size_t min_common_items = 5;
  /// Clamp for accuracy estimates inside the likelihoods.
  double min_accuracy = 0.05;
  double max_accuracy = 0.95;

  /// Parallelism of the O(items x claims^2) pair-statistics scan: 0 = the
  /// shared executor's full pool, 1 = serial. Results are identical for
  /// every setting (the statistics are integer counts).
  size_t num_threads = 0;
};

/// Dependence verdict on an unordered source pair.
struct SourceDependence {
  SourceId a = kInvalidSource;
  SourceId b = kInvalidSource;
  /// Posterior probability the pair is dependent (either direction).
  double probability = 0.0;
  /// Likely copier (the endpoint whose claims are better explained as
  /// copies), kInvalidSource when direction is indeterminate.
  SourceId likely_copier = kInvalidSource;
  size_t common_items = 0;
  size_t shared_true = 0;
  size_t shared_false = 0;
  size_t different = 0;
};

/// Bayesian copy detection (Dong, Berti-Équille, Srivastava, VLDB'09):
/// sharing *false* values is strong evidence of copying, sharing true
/// values is weak evidence. For each source pair with enough overlapping
/// items, compares the likelihood of the observed (shared-true,
/// shared-false, different) counts under independence vs dependence.
///
/// `truth_estimate` supplies the current belief about each item's true
/// value (parallel to db.items()); accuracies are the current source
/// accuracy estimates.
std::vector<SourceDependence> DetectCopying(
    const ClaimDb& db, const std::vector<std::string>& truth_estimate,
    const std::vector<double>& source_accuracy,
    const CopyDetectionConfig& config);

/// Pairwise independence probabilities: result[a][b] = P(a, b independent),
/// symmetric, 1.0 on the diagonal and for unscored pairs.
std::vector<std::vector<double>> IndependenceMatrix(
    size_t num_sources, const std::vector<SourceDependence>& dependencies);

}  // namespace bdi::fusion

#endif  // BDI_FUSION_COPY_DETECTION_H_
