#include "bdi/fusion/accu_copy.h"

#include <algorithm>
#include <cmath>

#include "bdi/common/executor.h"
#include "bdi/common/metrics.h"
#include "bdi/common/trace.h"
#include "bdi/fusion/accu_em.h"

namespace bdi::fusion {

namespace {

metrics::Counter& EmIterationsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Get().RegisterCounter("bdi.fusion.em.iterations");
  return *counter;
}

metrics::Counter& OuterIterationsCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.fusion.accucopy.outer_iterations");
  return *counter;
}

metrics::Counter& DependenciesCounter() {
  static metrics::Counter* counter = metrics::Registry::Get().RegisterCounter(
      "bdi.fusion.copy.dependencies_detected");
  return *counter;
}

}  // namespace

FusionResult AccuCopyFusion::Resolve(const ClaimDb& db) const {
  trace::StageSpan span("accucopy");
  const std::vector<DataItem>& items = db.items();
  span.AddItems(items.size());
  const ValueIndex& vi = db.value_index();
  size_t num_sources = db.num_sources();
  const AccuConfig& accu = config_.accu;

  // Bootstrap with plain Accu.
  FusionResult result = AccuFusion(accu).Resolve(db);

  internal::SimilarityCache sim_cache;
  if (accu.similarity_rho > 0.0) {
    sim_cache = internal::BuildSimilarityCache(db, accu.num_threads);
  }

  std::vector<std::vector<double>> independence(
      num_sources, std::vector<double>(num_sources, 1.0));
  std::vector<double> log_odds;
  std::vector<double> claim_probability(vi.num_claims(), 0.0);
  std::vector<uint32_t> chosen_local(items.size(), 0);
  std::vector<double> next_accuracy(num_sources, 0.0);
  std::vector<double> claim_count(num_sources, 0.0);

  for (int outer = 0; outer < config_.max_outer_iterations; ++outer) {
    OuterIterationsCounter().Add();
    // 1. Copy detection against the current truth estimate.
    last_dependencies_ = DetectCopying(db, result.chosen,
                                       result.source_accuracy, config_.copy);
    DependenciesCounter().Add(last_dependencies_.size());
    independence = IndependenceMatrix(num_sources, last_dependencies_);

    // 2. Discounted truth discovery with fixed dependence, iterating
    // accuracy to a fixpoint.
    std::vector<double> accuracy = result.source_accuracy;
    for (int iter = 0; iter < accu.max_iterations; ++iter) {
      ++result.iterations;
      EmIterationsCounter().Add();
      internal::ComputeLogOdds(accuracy, accu.n_false_values,
                               accu.min_accuracy, accu.max_accuracy,
                               &log_odds);

      // E step, parallel over items: each source's vote is discounted by
      // the probability it is independent of the higher-accuracy sources
      // already counted for the same value.
      ParallelForRanges(
          items.size(),
          [&](size_t begin, size_t end) {
            std::vector<double> score, scratch;
            std::vector<std::vector<SourceId>> supporters;
            for (size_t i = begin; i < end; ++i) {
              const DataItem& item = items[i];
              if (item.claims.empty()) continue;
              size_t d = vi.ItemDistinctCount(i);
              if (supporters.size() < d) supporters.resize(d);
              for (size_t v = 0; v < d; ++v) supporters[v].clear();
              size_t slot = vi.claim_offset[i];
              for (const Claim& claim : item.claims) {
                supporters[vi.claim_local[slot++]].push_back(claim.source);
              }
              score.assign(d, 0.0);
              for (size_t v = 0; v < d; ++v) {
                std::vector<SourceId>& sources = supporters[v];
                std::sort(sources.begin(), sources.end(),
                          [&](SourceId x, SourceId y) {
                            if (accuracy[x] != accuracy[y]) {
                              return accuracy[x] > accuracy[y];
                            }
                            return x < y;
                          });
                double total = 0.0;
                for (size_t k = 0; k < sources.size(); ++k) {
                  double weight = 1.0;
                  for (size_t m = 0; m < k; ++m) {
                    weight *= independence[sources[k]][sources[m]];
                  }
                  total += weight * log_odds[sources[k]];
                }
                score[v] = total;
              }
              internal::FinishItem(vi, i, accu.similarity_rho, sim_cache,
                                   score, scratch, claim_probability,
                                   &chosen_local[i], &result.confidence[i]);
            }
          },
          accu.num_threads);

      // M step, serial in item order (deterministic for any thread count).
      double max_delta = internal::UpdateAccuracies(
          db, vi, claim_probability, accu.initial_accuracy,
          accu.min_accuracy, accu.max_accuracy, &accuracy, &next_accuracy,
          &claim_count);
      if (max_delta < accu.epsilon) break;
    }
    result.source_accuracy = accuracy;
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].claims.empty()) continue;
      result.chosen[i] = vi.values[vi.DistinctValue(i, chosen_local[i])];
    }
  }
  return result;
}

}  // namespace bdi::fusion
