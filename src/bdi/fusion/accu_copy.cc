#include "bdi/fusion/accu_copy.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace bdi::fusion {

FusionResult AccuCopyFusion::Resolve(const ClaimDb& db) const {
  const std::vector<DataItem>& items = db.items();
  size_t num_sources = db.num_sources();
  const AccuConfig& accu = config_.accu;

  // Bootstrap with plain Accu.
  FusionResult result = AccuFusion(accu).Resolve(db);

  std::vector<std::vector<double>> independence(
      num_sources, std::vector<double>(num_sources, 1.0));

  for (int outer = 0; outer < config_.max_outer_iterations; ++outer) {
    // 1. Copy detection against the current truth estimate.
    last_dependencies_ = DetectCopying(db, result.chosen,
                                       result.source_accuracy, config_.copy);
    independence = IndependenceMatrix(num_sources, last_dependencies_);

    // 2. Discounted truth discovery with fixed dependence, iterating
    // accuracy to a fixpoint.
    std::vector<double> accuracy = result.source_accuracy;
    std::vector<double> next_accuracy(num_sources, 0.0);
    std::vector<double> claim_count(num_sources, 0.0);
    for (int iter = 0; iter < accu.max_iterations; ++iter) {
      ++result.iterations;
      std::fill(next_accuracy.begin(), next_accuracy.end(), 0.0);
      std::fill(claim_count.begin(), claim_count.end(), 0.0);

      for (size_t i = 0; i < items.size(); ++i) {
        const DataItem& item = items[i];
        if (item.claims.empty()) continue;

        // Group claims by value and compute each source's independent
        // vote share: higher-accuracy sources are counted first; later
        // sources contribute weight prod over already-counted co-claimants
        // of P(independent).
        std::map<std::string, std::vector<SourceId>> supporters;
        for (const Claim& claim : item.claims) {
          supporters[claim.value].push_back(claim.source);
        }
        std::map<std::string, double> score;
        for (auto& [value, sources] : supporters) {
          std::sort(sources.begin(), sources.end(),
                    [&](SourceId x, SourceId y) {
                      if (accuracy[x] != accuracy[y]) {
                        return accuracy[x] > accuracy[y];
                      }
                      return x < y;
                    });
          double total = 0.0;
          for (size_t k = 0; k < sources.size(); ++k) {
            double a = std::clamp(accuracy[sources[k]], accu.min_accuracy,
                                  accu.max_accuracy);
            double weight = 1.0;
            for (size_t m = 0; m < k; ++m) {
              weight *= independence[sources[k]][sources[m]];
            }
            total += weight *
                     std::log(accu.n_false_values * a / (1.0 - a));
          }
          score[value] = total;
        }
        if (accu.similarity_rho > 0.0 && score.size() > 1) {
          std::map<std::string, double> adjusted;
          for (const auto& [value, base] : score) {
            double boost = 0.0;
            for (const auto& [other, other_score] : score) {
              if (other == value) continue;
              boost += ClaimValueSimilarity(value, other) * other_score;
            }
            adjusted[value] = base + accu.similarity_rho * boost;
          }
          score = std::move(adjusted);
        }

        double max_score = -1e300;
        for (const auto& [value, s] : score) {
          max_score = std::max(max_score, s);
        }
        double z = 0.0;
        for (const auto& [value, s] : score) {
          z += std::exp(s - max_score);
        }
        std::string best;
        double best_probability = -1.0;
        std::map<std::string, double> probability;
        for (const auto& [value, s] : score) {
          double p = std::exp(s - max_score) / z;
          probability[value] = p;
          if (p > best_probability) {
            best_probability = p;
            best = value;
          }
        }
        result.chosen[i] = best;
        result.confidence[i] = best_probability;
        for (const Claim& claim : item.claims) {
          next_accuracy[claim.source] += probability[claim.value];
          claim_count[claim.source] += 1.0;
        }
      }

      double max_delta = 0.0;
      for (size_t s = 0; s < num_sources; ++s) {
        double updated = claim_count[s] > 0.0
                             ? next_accuracy[s] / claim_count[s]
                             : accu.initial_accuracy;
        updated =
            std::clamp(updated, accu.min_accuracy, accu.max_accuracy);
        max_delta = std::max(max_delta, std::abs(updated - accuracy[s]));
        accuracy[s] = updated;
      }
      if (max_delta < accu.epsilon) break;
    }
    result.source_accuracy = accuracy;
  }
  return result;
}

}  // namespace bdi::fusion
