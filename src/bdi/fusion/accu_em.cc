#include "bdi/fusion/accu_em.h"

#include <algorithm>
#include <cmath>

#include "bdi/common/executor.h"
#include "bdi/fusion/accu.h"

namespace bdi::fusion::internal {

SimilarityCache BuildSimilarityCache(const ClaimDb& db, size_t num_threads) {
  const ValueIndex& vi = db.value_index();
  size_t num_items = db.items().size();
  SimilarityCache cache;
  cache.offset.resize(num_items + 1, 0);
  for (size_t i = 0; i < num_items; ++i) {
    size_t d = vi.ItemDistinctCount(i);
    cache.offset[i + 1] = cache.offset[i] + (d > 1 ? d * d : 0);
  }
  cache.sims.resize(cache.offset[num_items], 0.0);
  ParallelForRanges(
      num_items,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          size_t d = vi.ItemDistinctCount(i);
          if (d < 2) continue;
          double* block = cache.sims.data() + cache.offset[i];
          for (size_t a = 0; a < d; ++a) {
            const std::string& va = vi.values[vi.DistinctValue(i, a)];
            for (size_t b = a + 1; b < d; ++b) {
              const std::string& vb = vi.values[vi.DistinctValue(i, b)];
              double s = ClaimValueSimilarity(va, vb);
              block[a * d + b] = s;
              block[b * d + a] = s;
            }
          }
        }
      },
      num_threads);
  return cache;
}

void ComputeLogOdds(const std::vector<double>& source_accuracy,
                    double n_false_values, double min_accuracy,
                    double max_accuracy, std::vector<double>* log_odds) {
  log_odds->resize(source_accuracy.size());
  for (size_t s = 0; s < source_accuracy.size(); ++s) {
    double a = std::clamp(source_accuracy[s], min_accuracy, max_accuracy);
    (*log_odds)[s] = std::log(n_false_values * a / (1.0 - a));
  }
}

void FinishItem(const ValueIndex& vi, size_t item, double rho,
                const SimilarityCache& sim_cache, std::vector<double>& score,
                std::vector<double>& scratch,
                std::vector<double>& claim_probability,
                uint32_t* best_local, double* best_probability) {
  size_t d = score.size();
  if (rho > 0.0 && d > 1) {
    scratch.assign(d, 0.0);
    for (size_t v = 0; v < d; ++v) {
      double boost = 0.0;
      for (size_t o = 0; o < d; ++o) {
        if (o == v) continue;
        boost += sim_cache.At(item, v, o, d) * score[o];
      }
      scratch[v] = score[v] + rho * boost;
    }
    score.swap(scratch);
  }

  // Softmax over claimed values (the unclaimed-false-value mass is constant
  // across values and cancels). Iteration in local-id order == the old
  // std::map's lexicographic order, so ties keep breaking the same way.
  double max_score = -1e300;
  for (double s : score) max_score = std::max(max_score, s);
  double z = 0.0;
  for (double s : score) z += std::exp(s - max_score);
  uint32_t best = 0;
  double best_p = -1.0;
  for (size_t v = 0; v < d; ++v) {
    score[v] = std::exp(score[v] - max_score) / z;  // now a probability
    if (score[v] > best_p) {
      best_p = score[v];
      best = static_cast<uint32_t>(v);
    }
  }
  for (size_t slot = vi.claim_offset[item]; slot < vi.claim_offset[item + 1];
       ++slot) {
    claim_probability[slot] = score[vi.claim_local[slot]];
  }
  *best_local = best;
  *best_probability = best_p;
}

double UpdateAccuracies(const ClaimDb& db, const ValueIndex& vi,
                        const std::vector<double>& claim_probability,
                        double initial_accuracy, double min_accuracy,
                        double max_accuracy,
                        std::vector<double>* source_accuracy,
                        std::vector<double>* next_accuracy,
                        std::vector<double>* claim_count) {
  const std::vector<DataItem>& items = db.items();
  std::fill(next_accuracy->begin(), next_accuracy->end(), 0.0);
  std::fill(claim_count->begin(), claim_count->end(), 0.0);
  for (size_t i = 0; i < items.size(); ++i) {
    size_t slot = vi.claim_offset[i];
    for (const Claim& claim : items[i].claims) {
      (*next_accuracy)[claim.source] += claim_probability[slot++];
      (*claim_count)[claim.source] += 1.0;
    }
  }
  double max_delta = 0.0;
  for (size_t s = 0; s < source_accuracy->size(); ++s) {
    double updated = (*claim_count)[s] > 0.0
                         ? (*next_accuracy)[s] / (*claim_count)[s]
                         : initial_accuracy;
    updated = std::clamp(updated, min_accuracy, max_accuracy);
    max_delta =
        std::max(max_delta, std::abs(updated - (*source_accuracy)[s]));
    (*source_accuracy)[s] = updated;
  }
  return max_delta;
}

}  // namespace bdi::fusion::internal
