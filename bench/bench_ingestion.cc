// E21 — Ingestion path comparison: text CSV vs columnar `.bds` for the same
// corpus. Measures parse wall time and throughput (bytes/s and records/s)
// for full reads, the csv->bds conversion itself, validation (row-by-row
// text scan vs CRC-32C checksum fast path), head reads (partial
// materialization), and role-keyed projected reads — plus file sizes and
// peak RSS. With --json, writes BENCH_ingestion.json in the shared bench
// schema; --threads is accepted for convention but ingestion is
// single-threaded by design (one streaming pass).
#include <sys/resource.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bdi/common/metrics.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/linkage/attr_roles.h"
#include "bdi/model/dataset_io.h"
#include "bdi/model/validate.h"
#include "bdi/schema/attribute_stats.h"
#include "bdi/storage/bds_reader.h"
#include "bdi/storage/bds_writer.h"
#include "bdi/storage/dataset_reader.h"
#include "bench_util.h"

using namespace bdi;

namespace {

// Peak resident set size in bytes (Linux ru_maxrss is KiB).
double PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "E21", "ingestion: text CSV vs columnar .bds",
      ".bds is several times smaller and faster to load (no text parsing, "
      "dictionary-decoded columns); validate's checksum fast path and "
      "head's partial reads beat the CSV scan by an order of magnitude");

  bench::BenchMain bench_main("ingestion", argc, argv, /*default_threads=*/1);
  size_t threads = bench_main.threads();
  bench::JsonReporter& json = bench_main.json();
  if (json.enabled()) metrics::SetEnabled(true);

  synth::WorldConfig config;
  config.seed = 8813;
  config.category = "camera";
  config.num_entities = 4000;
  config.num_sources = 24;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  const std::string csv = TempPath("bench_ingestion.csv");
  const std::string bds = TempPath("bench_ingestion.bds");
  if (!WriteDatasetCsv(world.dataset, csv).ok()) {
    std::fprintf(stderr, "cannot write %s\n", csv.c_str());
    return 1;
  }
  const size_t records = world.dataset.num_records();
  std::printf("corpus: %zu records across %zu sources (threads flag: %zu; "
              "ingestion is a single streaming pass)\n\n",
              records, world.dataset.num_sources(), threads);

  TextTable table({"stage", "wall ms", "MB/s", "records/s"});
  WallTimer timer;
  const auto report = [&](const std::string& stage, double seconds,
                          double bytes, double items) {
    char wall[32], mbs[32], rps[32];
    std::snprintf(wall, sizeof(wall), "%.2f", seconds * 1e3);
    std::snprintf(mbs, sizeof(mbs), "%.1f", bytes / seconds / 1e6);
    std::snprintf(rps, sizeof(rps), "%.0f", items / seconds);
    table.AddRow({stage, wall, mbs, rps});
    json.Add(stage, seconds, 1, items / seconds);
  };

  // Full CSV read (the pre-.bds baseline).
  timer.Reset();
  Result<Dataset> from_csv = ReadDatasetCsv(csv);
  double csv_read_s = timer.ElapsedSeconds();
  if (!from_csv.ok()) {
    std::fprintf(stderr, "csv read failed: %s\n",
                 from_csv.status().ToString().c_str());
    return 1;
  }

  // Streaming conversion (out-of-core: one chunk + one row group in RAM).
  timer.Reset();
  Result<storage::ConvertStats> converted = storage::ConvertCsvToBds(csv, bds);
  double convert_s = timer.ElapsedSeconds();
  if (!converted.ok()) {
    std::fprintf(stderr, "convert failed: %s\n",
                 converted.status().ToString().c_str());
    return 1;
  }
  const double csv_bytes = static_cast<double>(converted->csv_bytes);
  const double bds_bytes = static_cast<double>(converted->bds_bytes);

  report("csv_read_all", csv_read_s, csv_bytes, static_cast<double>(records));
  report("convert_csv_to_bds", convert_s, csv_bytes,
         static_cast<double>(records));

  // Full .bds read.
  timer.Reset();
  Result<Dataset> from_bds = storage::ReadDatasetAuto(bds);
  double bds_read_s = timer.ElapsedSeconds();
  if (!from_bds.ok() || from_bds->num_records() != records) {
    std::fprintf(stderr, "bds read failed: %s\n",
                 from_bds.status().ToString().c_str());
    return 1;
  }
  report("bds_read_all", bds_read_s, bds_bytes, static_cast<double>(records));

  // Role-keyed projected read (blocking columns only).
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(from_bds.value());
  linkage::AttrRoles roles = linkage::AttrRoles::Detect(stats);
  std::vector<std::string> keyed =
      linkage::KeyedAttributeNames(from_bds.value(), roles);
  {
    Result<storage::BdsReader> reader = storage::BdsReader::Open(bds);
    if (reader.ok()) {
      timer.Reset();
      Result<Dataset> projected = reader->ReadProjected(keyed);
      double s = timer.ElapsedSeconds();
      if (projected.ok()) {
        report("bds_read_projected", s, bds_bytes,
               static_cast<double>(records));
      }
    }
  }

  // Head reads: 100 records out of the whole corpus, both formats.
  {
    Result<storage::DatasetReader> reader = storage::DatasetReader::Open(csv);
    timer.Reset();
    Result<Dataset> head = reader.ok() ? reader->ReadHead(100)
                                       : Result<Dataset>(reader.status());
    double s = timer.ElapsedSeconds();
    if (head.ok()) report("csv_head_100", s, csv_bytes, 100.0);
  }
  {
    Result<storage::DatasetReader> reader = storage::DatasetReader::Open(bds);
    timer.Reset();
    Result<Dataset> head = reader.ok() ? reader->ReadHead(100)
                                       : Result<Dataset>(reader.status());
    double s = timer.ElapsedSeconds();
    if (head.ok()) report("bds_head_100", s, bds_bytes, 100.0);
  }

  // Validation: row-by-row text scan vs the CRC checksum fast path.
  timer.Reset();
  ValidationReport csv_report = ValidateDatasetCsv(csv);
  double csv_validate_s = timer.ElapsedSeconds();
  report("csv_validate", csv_validate_s, csv_bytes,
         static_cast<double>(csv_report.rows));
  timer.Reset();
  ValidationReport bds_report = storage::ValidateBdsFile(bds);
  double bds_validate_s = timer.ElapsedSeconds();
  report("bds_validate_checksum", bds_validate_s, bds_bytes,
         static_cast<double>(bds_report.rows));
  if (!csv_report.ok() || !bds_report.ok()) {
    std::fprintf(stderr, "validation unexpectedly found issues\n");
    return 1;
  }

  table.Print("ingestion stages");
  std::printf("file size: %.0f CSV bytes -> %.0f bds bytes (%.2fx)\n",
              csv_bytes, bds_bytes, csv_bytes / bds_bytes);
  std::printf("peak RSS: %.1f MB\n", PeakRssBytes() / 1e6);
  std::printf("validate speedup (checksum fast path): %.1fx\n",
              csv_validate_s / bds_validate_s);

  char note[64];
  std::snprintf(note, sizeof(note), "%.0f", csv_bytes);
  json.Note("csv_bytes", note);
  std::snprintf(note, sizeof(note), "%.0f", bds_bytes);
  json.Note("bds_bytes", note);
  std::snprintf(note, sizeof(note), "%.0f", PeakRssBytes());
  json.Note("peak_rss_bytes", note);
  std::snprintf(note, sizeof(note), "%zu", records);
  json.Note("records", note);
  bench::AttachMetricsSnapshot(json);

  std::remove(csv.c_str());
  std::remove(bds.c_str());
  return 0;
}
