// Microbenchmarks (google-benchmark) for the hot primitives: similarity
// measures, tokenization, blocking-key generation and the MapReduce
// substrate. These are the inner loops of the pairwise-matching stage.
#include <benchmark/benchmark.h>

#include "bdi/common/random.h"
#include "bdi/dataflow/mapreduce.h"
#include "bdi/text/similarity.h"
#include "bdi/text/tokenizer.h"

namespace {

using namespace bdi;

std::string MakeName(Rng* rng) {
  static const char* kBrands[] = {"zorix", "calon", "venar", "mirata"};
  std::string name = kBrands[rng->UniformInt(0, 3)];
  name += " ";
  name.push_back(static_cast<char>('a' + rng->UniformInt(0, 25)));
  name.push_back(static_cast<char>('a' + rng->UniformInt(0, 25)));
  name += "-" + std::to_string(rng->UniformInt(100, 9999)) + " camera";
  return name;
}

void BM_JaroWinkler(benchmark::State& state) {
  Rng rng(1);
  std::string a = MakeName(&rng), b = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_EditDistance(benchmark::State& state) {
  Rng rng(2);
  std::string a = MakeName(&rng), b = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance);

void BM_MongeElkan(benchmark::State& state) {
  Rng rng(3);
  std::string a = MakeName(&rng), b = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::MongeElkanSimilarity(a, b));
  }
}
BENCHMARK(BM_MongeElkan);

void BM_TokenJaccard(benchmark::State& state) {
  Rng rng(4);
  std::string a = MakeName(&rng), b = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::TokenJaccard(a, b));
  }
}
BENCHMARK(BM_TokenJaccard);

void BM_WordTokens(benchmark::State& state) {
  Rng rng(5);
  std::string a = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::WordTokens(a));
  }
}
BENCHMARK(BM_WordTokens);

void BM_IdentifierTokens(benchmark::State& state) {
  Rng rng(6);
  std::string a = MakeName(&rng) + " sku" + std::to_string(100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::IdentifierTokens(a, 4));
  }
}
BENCHMARK(BM_IdentifierTokens);

void BM_MapReduceWordCount(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::string> docs;
  for (int i = 0; i < 2000; ++i) docs.push_back(MakeName(&rng));
  for (auto _ : state) {
    auto out = dataflow::MapReduce<std::string, std::string, int,
                                   std::pair<std::string, int>>(
        docs,
        [](const std::string& doc,
           dataflow::Emitter<std::string, int>* emitter) {
          for (const std::string& token : text::WordTokens(doc)) {
            emitter->Emit(token, 1);
          }
        },
        [](const std::string& key, std::vector<int>&& values) {
          int total = 0;
          for (int v : values) total += v;
          return std::make_pair(key, total);
        });
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MapReduceWordCount);

}  // namespace

BENCHMARK_MAIN();
