// Microbenchmarks (google-benchmark) for the hot primitives: similarity
// measures, tokenization, blocking-key generation and the MapReduce
// substrate. These are the inner loops of the pairwise-matching stage.
//
// With `--json`, skips google-benchmark and instead times the
// signature-bound kernels at every supported SIMD dispatch level
// (scalar, sse2, avx2 — see bdi::cpu), writing
// BENCH_micro_primitives.json in the same schema as the other benches:
// one entry per kernel/level with wall seconds and ops/sec
// (ns/op = 1e9 / items_per_sec).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bdi/common/cpu.h"
#include "bdi/common/random.h"
#include "bdi/common/timer.h"
#include "bdi/dataflow/mapreduce.h"
#include "bdi/text/interner.h"
#include "bdi/text/similarity.h"
#include "bdi/text/tokenizer.h"
#include "bench_util.h"

namespace {

using namespace bdi;

std::string MakeName(Rng* rng) {
  static const char* kBrands[] = {"zorix", "calon", "venar", "mirata"};
  std::string name = kBrands[rng->UniformInt(0, 3)];
  name += " ";
  name.push_back(static_cast<char>('a' + rng->UniformInt(0, 25)));
  name.push_back(static_cast<char>('a' + rng->UniformInt(0, 25)));
  name += "-" + std::to_string(rng->UniformInt(100, 9999)) + " camera";
  return name;
}

void BM_JaroWinkler(benchmark::State& state) {
  Rng rng(1);
  std::string a = MakeName(&rng), b = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_EditDistance(benchmark::State& state) {
  Rng rng(2);
  std::string a = MakeName(&rng), b = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance);

void BM_MongeElkan(benchmark::State& state) {
  Rng rng(3);
  std::string a = MakeName(&rng), b = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::MongeElkanSimilarity(a, b));
  }
}
BENCHMARK(BM_MongeElkan);

void BM_TokenJaccard(benchmark::State& state) {
  Rng rng(4);
  std::string a = MakeName(&rng), b = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::TokenJaccard(a, b));
  }
}
BENCHMARK(BM_TokenJaccard);

void BM_JaroWinklerUpperBound(benchmark::State& state) {
  Rng rng(8);
  text::TokenSignature a = text::MakeTokenSignature(MakeName(&rng));
  text::TokenSignature b = text::MakeTokenSignature(MakeName(&rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaroWinklerUpperBound(a, b));
  }
}
BENCHMARK(BM_JaroWinklerUpperBound);

void BM_WordTokens(benchmark::State& state) {
  Rng rng(5);
  std::string a = MakeName(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::WordTokens(a));
  }
}
BENCHMARK(BM_WordTokens);

void BM_IdentifierTokens(benchmark::State& state) {
  Rng rng(6);
  std::string a = MakeName(&rng) + " sku" + std::to_string(100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::IdentifierTokens(a, 4));
  }
}
BENCHMARK(BM_IdentifierTokens);

void BM_MapReduceWordCount(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::string> docs;
  for (int i = 0; i < 2000; ++i) docs.push_back(MakeName(&rng));
  for (auto _ : state) {
    auto out = dataflow::MapReduce<std::string, std::string, int,
                                   std::pair<std::string, int>>(
        docs,
        [](const std::string& doc,
           dataflow::Emitter<std::string, int>* emitter) {
          for (const std::string& token : text::WordTokens(doc)) {
            emitter->Emit(token, 1);
          }
        },
        [](const std::string& key, std::vector<int>&& values) {
          int total = 0;
          for (int v : values) total += v;
          return std::make_pair(key, total);
        });
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MapReduceWordCount);

// ---------------------------------------------------------------------------
// --json mode: signature-bound kernels per SIMD dispatch level.

/// Fixed corpus of token pairs the per-level timings all run over, so
/// levels differ only in instruction selection, never workload.
struct KernelCorpus {
  std::vector<text::TokenSignature> x;
  std::vector<text::TokenSignature> y;
  text::TokenInterner interner;
  std::vector<text::TokenSignature> signatures;  // indexed by TokenId
  std::vector<std::vector<text::TokenId>> seq_a;
  std::vector<std::vector<text::TokenId>> seq_b;
};

KernelCorpus MakeCorpus() {
  KernelCorpus corpus;
  Rng rng(42);
  for (int i = 0; i < 512; ++i) {
    corpus.x.push_back(text::MakeTokenSignature(MakeName(&rng)));
    corpus.y.push_back(text::MakeTokenSignature(MakeName(&rng)));
  }
  for (int i = 0; i < 64; ++i) {
    std::vector<text::TokenId> a, b;
    for (const std::string& token : text::WordTokens(MakeName(&rng))) {
      a.push_back(corpus.interner.Intern(token));
    }
    for (const std::string& token : text::WordTokens(MakeName(&rng))) {
      b.push_back(corpus.interner.Intern(token));
    }
    corpus.seq_a.push_back(std::move(a));
    corpus.seq_b.push_back(std::move(b));
  }
  for (text::TokenId id = 0; id < corpus.interner.size(); ++id) {
    corpus.signatures.push_back(
        text::MakeTokenSignature(corpus.interner.token(id)));
  }
  return corpus;
}

/// Times `op(i)` over `ops` evaluations (cycling a corpus of `span`
/// distinct inputs) and records it as `<kernel>/<level>`.
template <typename Op>
void TimeKernel(bench::JsonReporter& json, const std::string& kernel,
                const char* level, size_t ops, size_t span, Op op) {
  // One warm-up sweep so first-touch cache misses don't bill to the first
  // level measured.
  double sink = 0.0;
  for (size_t i = 0; i < span; ++i) sink += op(i);
  WallTimer timer;
  for (size_t i = 0; i < ops; ++i) sink += op(i % span);
  double seconds = timer.ElapsedSeconds();
  // Keep `sink` live so the whole loop cannot be dead-code eliminated.
  benchmark::DoNotOptimize(sink);
  double ops_per_sec = seconds > 0.0 ? static_cast<double>(ops) / seconds : 0;
  json.Add("micro/" + kernel + "/" + level, seconds, 1, ops_per_sec);
  std::printf("%-36s %-7s %8.1f ns/op\n", kernel.c_str(), level,
              ops_per_sec > 0.0 ? 1e9 / ops_per_sec : 0.0);
}

int RunJsonMode(int argc, char** argv) {
  bench::Banner("E0", "hot-primitive microbenchmarks (signature kernels)",
                "integer signature bounds drop sharply from scalar to "
                "sse2/avx2; the double-kernel reference rows are "
                "level-invariant");
  bench::BenchMain bench_main("micro_primitives", argc, argv);
  bench::JsonReporter& json = bench_main.json();
  KernelCorpus corpus = MakeCorpus();
  text::SimilarityScratch scratch;
  json.Note("simd_detected",
            std::string("\"") +
                cpu::SimdLevelName(cpu::DetectedSimdLevel()) + "\"");

  std::vector<cpu::SimdLevel> levels = {cpu::SimdLevel::kScalar};
  if (cpu::DetectedSimdLevel() >= cpu::SimdLevel::kSse2) {
    levels.push_back(cpu::SimdLevel::kSse2);
  }
  if (cpu::DetectedSimdLevel() >= cpu::SimdLevel::kAvx2) {
    levels.push_back(cpu::SimdLevel::kAvx2);
  }
  constexpr size_t kOps = 2'000'000;
  constexpr size_t kSeqOps = 200'000;
  for (cpu::SimdLevel level : levels) {
    cpu::SetSimdLevel(level);
    const char* name = cpu::SimdLevelName(level);
    TimeKernel(json, "jaro_match_upper_bound", name, kOps, corpus.x.size(),
               [&](size_t i) {
                 return static_cast<double>(
                     text::JaroMatchUpperBound(corpus.x[i], corpus.y[i]));
               });
    TimeKernel(json, "edit_distance_lower_bound", name, kOps,
               corpus.x.size(), [&](size_t i) {
                 return static_cast<double>(text::EditDistanceLowerBound(
                     corpus.x[i], corpus.y[i]));
               });
    TimeKernel(json, "jaro_winkler_upper_bound", name, kOps,
               corpus.x.size(), [&](size_t i) {
                 return text::JaroWinklerUpperBound(corpus.x[i],
                                                    corpus.y[i]);
               });
    TimeKernel(json, "monge_elkan_upper_bound", name, kSeqOps,
               corpus.seq_a.size(), [&](size_t i) {
                 return text::SymmetricMongeElkanUpperBound(
                     corpus.signatures, corpus.seq_a[i], corpus.seq_b[i],
                     scratch);
               });
  }
  cpu::SetSimdLevel(cpu::DetectedSimdLevel());
  // Level-invariant reference row: the full double kernel the bounds are
  // protecting, timed once at the detected level.
  TimeKernel(json, "symmetric_monge_elkan",
             cpu::SimdLevelName(cpu::ActiveSimdLevel()), kSeqOps,
             corpus.seq_a.size(), [&](size_t i) {
               return text::SymmetricMongeElkan(corpus.interner,
                                                corpus.seq_a[i],
                                                corpus.seq_b[i], scratch);
             });
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return RunJsonMode(argc, argv);
    }
  }
  benchmark::Initialize(&argc, &argv[0]);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
