// E8 — Linkage scalability on the shared-memory dataflow substrate:
// runtime and throughput as the corpus grows, and the per-stage breakdown
// (blocking / matching / clustering). Matching parallelizes across the
// thread pool; the thread sweep shows the (machine-dependent) speedup.
// With `--json`, writes BENCH_linkage_scaling.json carrying the scaling
// rows, the thread sweep, and the pipeline metrics snapshot (interner
// size, chunk counts, scratch reuses).
#include <thread>

#include "bdi/common/executor.h"
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/linkage/linkage.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::linkage;

int main(int argc, char** argv) {
  bench::BenchMain bench_main("linkage_scaling", argc, argv);
  Executor::Configure(bench_main.threads());
  bench::JsonReporter& json = bench_main.json();
  // Metrics ride along in the JSON; instrumentation is bitwise-neutral.
  if (json.enabled()) metrics::SetEnabled(true);
  bench::Banner("E8", "linkage scalability (dataflow substrate)",
                "runtime grows near-linearly with candidate count (blocking "
                "keeps the pair space sparse); matching dominates and "
                "parallelizes across threads");

  TextTable table({"records", "candidates", "block ms", "match ms",
                   "cluster ms", "total ms", "records/s"});
  for (int entities : {250, 500, 1000, 2000}) {
    synth::WorldConfig config;
    config.seed = 7;
    config.num_entities = entities;
    config.num_sources = 14;
    synth::SyntheticWorld world = synth::GenerateWorld(config);
    Linker linker(&world.dataset, {});
    LinkageResult result = linker.Run();
    double total =
        result.blocking_seconds + result.matching_seconds +
        result.clustering_seconds;
    double records_per_sec =
        static_cast<double>(world.dataset.num_records()) /
        std::max(1e-9, total);
    table.AddRow(
        {std::to_string(world.dataset.num_records()),
         std::to_string(result.num_candidates),
         FormatDouble(1000 * result.blocking_seconds, 1),
         FormatDouble(1000 * result.matching_seconds, 1),
         FormatDouble(1000 * result.clustering_seconds, 1),
         FormatDouble(1000 * total, 1), FormatDouble(records_per_sec, 0)});
    json.Add("linkage_total_" + std::to_string(entities) + "_entities",
             total, Executor::Get().num_threads(), records_per_sec);
    json.Add("linkage_matching_" + std::to_string(entities) + "_entities",
             result.matching_seconds, Executor::Get().num_threads(),
             static_cast<double>(result.num_candidates) /
                 std::max(1e-9, result.matching_seconds));
  }
  table.Print("Figure E8: runtime vs corpus size");

  // Thread sweep on a fixed corpus (speedup depends on available cores:
  // this machine reports hardware_concurrency below).
  synth::WorldConfig config;
  config.seed = 7;
  config.num_entities = 1500;
  config.num_sources = 14;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  TextTable threads_table({"threads", "match ms", "speedup"});
  double baseline = 0.0;
  // Identity reference: the per-pair cascade, serial. Every sweep run
  // (batched slab path, any thread count) must reproduce its match list
  // and scores bit for bit — identical_output below is the gate.
  LinkageResult reference;
  {
    LinkerConfig reference_config;
    reference_config.num_threads = 1;
    reference_config.use_batch = false;
    Linker linker(&world.dataset, reference_config);
    reference = linker.Run();
  }
  bool identical_output = true;
  auto same_matches = [](const LinkageResult& x, const LinkageResult& y) {
    if (x.matches.size() != y.matches.size()) return false;
    for (size_t i = 0; i < x.matches.size(); ++i) {
      if (x.matches[i].pair.a != y.matches[i].pair.a ||
          x.matches[i].pair.b != y.matches[i].pair.b ||
          x.matches[i].score != y.matches[i].score) {
        return false;
      }
    }
    return true;
  };
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    LinkerConfig linker_config;
    linker_config.num_threads = threads;
    Linker linker(&world.dataset, linker_config);
    LinkageResult result = linker.Run();
    identical_output = identical_output && same_matches(reference, result);
    // The progressive scheduler with an unlimited budget reorders the
    // comparisons but must never change a score: same gate, same
    // reference, every thread count.
    {
      LinkerConfig progressive_config = linker_config;
      progressive_config.use_progressive = true;
      Linker progressive_linker(&world.dataset, progressive_config);
      LinkageResult progressive_result = progressive_linker.Run();
      identical_output =
          identical_output && same_matches(reference, progressive_result);
    }
    if (threads == 1) baseline = result.matching_seconds;
    threads_table.AddRow(
        {std::to_string(threads),
         FormatDouble(1000 * result.matching_seconds, 1),
         FormatDouble(baseline / std::max(1e-9, result.matching_seconds),
                      2)});
    json.Add("matching_sweep_" + std::to_string(threads) + "_threads",
             result.matching_seconds, threads,
             static_cast<double>(result.num_candidates) /
                 std::max(1e-9, result.matching_seconds));
  }
  threads_table.Print("Figure E8b: matching-stage thread scaling");
  std::printf("batched matching identical to per-pair reference: %s\n",
              identical_output ? "yes" : "NO");
  json.Note("identical_output", identical_output ? "true" : "false");
  std::printf("hardware_concurrency on this machine: %u\n",
              std::thread::hardware_concurrency());
  bench::AttachMetricsSnapshot(json);
  return 0;
}
