// E9 — Incremental vs batch linkage under a stream of record insertions:
// incrementally linking each arriving batch costs a small fraction of
// re-running batch linkage, at equivalent quality.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/linkage/incremental.h"
#include "bdi/linkage/linkage.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::linkage;

int main() {
  bench::Banner("E9", "incremental vs batch linkage on insert streams",
                "per-batch incremental cost stays roughly flat and far "
                "below the (growing) full batch re-run, with matching "
                "quality");

  // Build the full corpus up-front, then replay it: 50% initially, then 5
  // batches of 10%.
  synth::WorldConfig config;
  config.seed = 2014;
  config.num_entities = 800;
  config.num_sources = 14;
  synth::SyntheticWorld full = synth::GenerateWorld(config);

  Dataset dataset;
  for (const SourceInfo& source : full.dataset.sources()) {
    dataset.AddSource(source.name);
  }
  std::vector<EntityId> truth;
  size_t cursor = 0;
  auto feed = [&](size_t count) {
    for (size_t i = 0; i < count && cursor < full.dataset.num_records();
         ++i, ++cursor) {
      const Record& record =
          full.dataset.record(static_cast<RecordIdx>(cursor));
      std::vector<std::pair<std::string, std::string>> fields;
      for (const Field& field : record.fields) {
        fields.emplace_back(full.dataset.attr_name(field.attr), field.value);
      }
      dataset.AddRecord(record.source, fields);
      truth.push_back(full.truth.entity_of_record[cursor]);
    }
  };

  size_t total = full.dataset.num_records();
  feed(total / 2);
  IncrementalLinker incremental(&dataset, {});
  WallTimer timer;
  incremental.AddNewRecords();
  double initial_ms = timer.ElapsedMillis();
  std::printf("initial load: %zu records, %.1f ms\n\n", dataset.num_records(),
              initial_ms);

  TextTable table({"batch", "records total", "incr ms", "incr comparisons",
                   "batch-rerun ms", "speedup", "incr F1", "batch F1"});
  for (int batch = 1; batch <= 5; ++batch) {
    feed(total / 10);

    timer.Reset();
    size_t comparisons = incremental.AddNewRecords();
    double incremental_ms = timer.ElapsedMillis();
    LinkageQuality incremental_quality =
        EvaluateClusters(incremental.Clusters().label_of_record, truth);

    timer.Reset();
    Linker batch_linker(&dataset, {});
    LinkageResult batch_result = batch_linker.Run();
    double batch_ms = timer.ElapsedMillis();
    LinkageQuality batch_quality =
        EvaluateClusters(batch_result.clusters.label_of_record, truth);

    table.AddRow({std::to_string(batch), std::to_string(dataset.num_records()),
                  FormatDouble(incremental_ms, 1),
                  std::to_string(comparisons),
                  FormatDouble(batch_ms, 1),
                  FormatDouble(batch_ms / std::max(0.01, incremental_ms), 1) +
                      "x",
                  FormatDouble(incremental_quality.f1, 3),
                  FormatDouble(batch_quality.f1, 3)});
  }
  table.Print("Figure E9: per-batch update cost, incremental vs batch");
  return 0;
}
