// E9 — Incremental vs batch linkage under a stream of record insertions:
// incrementally linking each arriving batch costs a small fraction of
// re-running batch linkage, at equivalent quality. A second replay runs
// the same stream under a per-batch comparison budget (the progressive
// scheduler inside IncrementalLinker), showing how much quality a
// latency-bound update keeps. With `--json`, writes
// BENCH_incremental_linkage.json with both replays' per-batch rows.
#include <string>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/linkage/incremental.h"
#include "bdi/linkage/linkage.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::linkage;

namespace {

/// The replayed stream: the full corpus generated up-front, fed 50%
/// initially and then 5 batches of 10% into a fresh Dataset.
struct Stream {
  explicit Stream(const synth::SyntheticWorld& full) : full_(full) {
    for (const SourceInfo& source : full.dataset.sources()) {
      dataset.AddSource(source.name);
    }
  }

  void Feed(size_t count) {
    for (size_t i = 0; i < count && cursor_ < full_.dataset.num_records();
         ++i, ++cursor_) {
      const Record& record =
          full_.dataset.record(static_cast<RecordIdx>(cursor_));
      std::vector<std::pair<std::string, std::string>> fields;
      for (const Field& field : record.fields) {
        fields.emplace_back(full_.dataset.attr_name(field.attr), field.value);
      }
      dataset.AddRecord(record.source, fields);
      truth.push_back(full_.truth.entity_of_record[cursor_]);
    }
  }

  Dataset dataset;
  std::vector<EntityId> truth;

 private:
  const synth::SyntheticWorld& full_;
  size_t cursor_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMain bench_main("incremental_linkage", argc, argv);
  bench::JsonReporter& json = bench_main.json();
  bench::Banner("E9", "incremental vs batch linkage on insert streams",
                "per-batch incremental cost stays roughly flat and far "
                "below the (growing) full batch re-run, with matching "
                "quality; the budgeted replay trades a bounded recall dip "
                "for a hard per-batch comparison cap");

  synth::WorldConfig config;
  config.seed = 2014;
  config.num_entities = 800;
  config.num_sources = 14;
  synth::SyntheticWorld full = synth::GenerateWorld(config);
  size_t total = full.dataset.num_records();

  Stream stream(full);
  stream.Feed(total / 2);
  IncrementalLinker incremental(&stream.dataset, {});
  WallTimer timer;
  incremental.AddNewRecords();
  double initial_ms = timer.ElapsedMillis();
  std::printf("initial load: %zu records, %.1f ms\n\n",
              stream.dataset.num_records(), initial_ms);

  // Budgeted replay alongside: same stream, initial backlog ingested
  // unbudgeted, then each live update batch may spend at most half the
  // comparisons it would need.
  Stream budgeted_stream(full);
  budgeted_stream.Feed(total / 2);
  IncrementalLinker budgeted(&budgeted_stream.dataset, {});
  budgeted.AddNewRecords();
  budgeted.set_comparison_budget(0.5);

  TextTable table({"batch", "records total", "incr ms", "incr comparisons",
                   "batch-rerun ms", "speedup", "incr F1", "batch F1",
                   "50% budget F1", "deferred"});
  for (int batch = 1; batch <= 5; ++batch) {
    stream.Feed(total / 10);
    budgeted_stream.Feed(total / 10);

    timer.Reset();
    size_t comparisons = incremental.AddNewRecords();
    double incremental_ms = timer.ElapsedMillis();
    LinkageQuality incremental_quality = EvaluateClusters(
        incremental.Clusters().label_of_record, stream.truth);

    budgeted.AddNewRecords();
    const ProgressiveStats& progressive = budgeted.last_progressive();
    LinkageQuality budgeted_quality = EvaluateClusters(
        budgeted.Clusters().label_of_record, budgeted_stream.truth);

    timer.Reset();
    Linker batch_linker(&stream.dataset, {});
    LinkageResult batch_result = batch_linker.Run();
    double batch_ms = timer.ElapsedMillis();
    LinkageQuality batch_quality = EvaluateClusters(
        batch_result.clusters.label_of_record, stream.truth);

    table.AddRow({std::to_string(batch),
                  std::to_string(stream.dataset.num_records()),
                  FormatDouble(incremental_ms, 1),
                  std::to_string(comparisons),
                  FormatDouble(batch_ms, 1),
                  FormatDouble(batch_ms / std::max(0.01, incremental_ms), 1) +
                      "x",
                  FormatDouble(incremental_quality.f1, 3),
                  FormatDouble(batch_quality.f1, 3),
                  FormatDouble(budgeted_quality.f1, 3),
                  std::to_string(progressive.num_deferred)});
    json.Add("incremental_batch_" + std::to_string(batch), incremental_ms / 1e3,
             1, static_cast<double>(comparisons) /
                    std::max(1e-9, incremental_ms / 1e3));
    json.Note("f1_batch_" + std::to_string(batch),
              "{\"incremental\": " + FormatDouble(incremental_quality.f1, 4) +
                  ", \"batch\": " + FormatDouble(batch_quality.f1, 4) +
                  ", \"budgeted_50\": " + FormatDouble(budgeted_quality.f1, 4) +
                  ", \"budget_deferred\": " +
                  std::to_string(progressive.num_deferred) + "}");
  }
  table.Print("Figure E9: per-batch update cost, incremental vs batch");
  return 0;
}
