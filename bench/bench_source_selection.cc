// E10 — "Less is More" source selection: fused quality vs number of
// integrated sources for greedy marginal-gain vs baseline orderings, with
// measured fusion precision confirming the estimated curves. Under a
// per-source cost, net gain peaks well before all sources are integrated.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/fusion/accu.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/select/source_selection.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::select;

int main() {
  bench::Banner("E10", "source selection (less is more)",
                "greedy dominates random/coverage orderings; with cost, "
                "net gain peaks at a small source subset and declines as "
                "low-accuracy tail sources are added");

  synth::WorldConfig config;
  config.seed = 2013;
  config.category = "stock";
  config.num_entities = 300;
  config.num_sources = 24;
  config.source_accuracy_min = 0.35;
  config.source_accuracy_max = 0.95;
  config.format_variation_prob = 0.0;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  fusion::ClaimDb db = fusion::ClaimDb::FromGroundTruth(
      world.truth, world.dataset.num_sources());

  // Selection profiles from generator accuracies + observed coverage
  // (an oracle profile set; the estimator itself never sees the truth).
  std::vector<SourceProfile> profiles;
  for (size_t s = 0; s < world.truth.source_accuracy.size(); ++s) {
    profiles.push_back(
        {static_cast<SourceId>(s), world.truth.source_accuracy[s],
         static_cast<double>(world.dataset.source(s).records.size()) /
             static_cast<double>(world.truth.num_entities()),
         1.0});
  }

  SelectionConfig selection;
  selection.cost_weight = 0.004;
  SelectionResult greedy = GreedySelect(profiles, selection);
  SelectionResult by_coverage = OrderByCoverage(profiles, selection);
  SelectionResult random = RandomOrder(profiles, selection);

  auto measured_precision = [&](const std::vector<SourceId>& order,
                                size_t prefix) {
    std::vector<bool> keep(world.dataset.num_sources(), false);
    for (size_t k = 0; k < prefix; ++k) keep[order[k]] = true;
    fusion::ClaimDb subset = RestrictToSources(db, keep);
    fusion::FusionResult result = fusion::AccuFusion().Resolve(subset);
    return fusion::EvaluateFusion(subset, result, world.truth).precision;
  };

  TextTable table({"#sources", "greedy est", "greedy measured",
                   "greedy gain", "coverage est", "random est"});
  for (size_t k : {1u, 2u, 4u, 6u, 8u, 12u, 16u, 20u, 24u}) {
    table.AddRow({std::to_string(k), FormatDouble(greedy.quality[k - 1], 3),
                  FormatDouble(measured_precision(greedy.order, k), 3),
                  FormatDouble(greedy.gain[k - 1], 3),
                  FormatDouble(by_coverage.quality[k - 1], 3),
                  FormatDouble(random.quality[k - 1], 3)});
  }
  table.Print("Figure E10: fused quality & gain vs #sources integrated");
  std::printf("greedy best prefix (max net gain): %zu of %zu sources\n",
              greedy.best_prefix, profiles.size());
  return 0;
}
