// E18 — Pipeline ablations: which design choices earn their keep?
//  (a) stage substitution: replace each automated stage with its ground-
//      truth oracle and measure the fusion precision delta — the cost of
//      automating that stage;
//  (b) feature toggles: linkage feedback loop, numeric value snapping,
//      schema context in the matcher.
#include <map>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/core/integrator.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/evaluation.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::core;

namespace {

synth::SyntheticWorld MakeWorld() {
  synth::WorldConfig config;
  config.seed = 2013;
  config.category = "camera";
  config.num_entities = 300;
  config.num_sources = 12;
  config.num_copiers = 3;
  config.source_accuracy_min = 0.75;
  config.source_accuracy_max = 0.95;
  return synth::GenerateWorld(config);
}

/// Ground-truth mediated schema (oracle alignment).
schema::MediatedSchema OracleSchema(const synth::SyntheticWorld& world) {
  schema::MediatedSchema schema;
  std::map<int, int> cluster_of_canonical;
  for (const auto& [sa, canonical] :
       world.truth.canonical_of_source_attr) {
    auto it = cluster_of_canonical.find(canonical);
    if (it == cluster_of_canonical.end()) {
      it = cluster_of_canonical
               .emplace(canonical,
                        static_cast<int>(schema.clusters.size()))
               .first;
      schema.clusters.emplace_back();
      schema.cluster_names.push_back(
          world.truth.canonical_attrs[canonical]);
    }
    schema.clusters[it->second].push_back(sa);
    schema.cluster_of[sa] = it->second;
  }
  return schema;
}

}  // namespace

int main() {
  bench::Banner("E18", "pipeline ablations",
                "oracle substitutions bound each stage's automation tax; "
                "the feedback loop and numeric snapping each buy "
                "measurable fusion precision");

  synth::SyntheticWorld world = MakeWorld();

  auto fused_precision = [&](const IntegrationReport& report) {
    fusion::PipelineMappings mappings = fusion::MapPipelineToTruth(
        report.linkage.clusters, report.schema, world.truth);
    return fusion::EvaluateFusionMapped(report.claims, report.fusion,
                                        mappings, world.truth)
        .precision;
  };

  TextTable table({"configuration", "schema F1", "link F1",
                   "fusion precision"});
  auto add = [&](const std::string& label, const IntegrationReport& report) {
    schema::SchemaQuality schema_quality = schema::EvaluateSchema(
        report.schema, world.truth.canonical_of_source_attr);
    linkage::LinkageQuality linkage_quality = linkage::EvaluateClusters(
        report.linkage.clusters.label_of_record,
        world.truth.entity_of_record);
    table.AddRow({label, FormatDouble(schema_quality.f1, 3),
                  FormatDouble(linkage_quality.f1, 3),
                  FormatDouble(fused_precision(report), 3)});
  };

  // Full automated pipeline (defaults).
  IntegrationReport automated = Integrator().Run(world.dataset);
  add("automated (default)", automated);

  // Oracle schema: replace alignment, keep automated linkage + fusion.
  {
    IntegrationReport report = automated;  // reuse stats
    report.schema = OracleSchema(world);
    report.normalizer =
        schema::ValueNormalizer::Fit(report.stats, report.schema);
    linkage::Linker linker(&world.dataset, {}, &report.schema,
                           &report.normalizer);
    report.linkage = linker.Run();
    report.claims = fusion::ClaimDb::FromPipeline(
        world.dataset, report.linkage.clusters, report.schema,
        report.normalizer, &linker.roles());
    report.claims.CanonicalizeNumericValues(0.02);
    report.fusion = fusion::AccuCopyFusion().Resolve(report.claims);
    add("oracle schema", report);
  }

  // Oracle linkage: replace clusters with the truth, keep the rest.
  {
    IntegrationReport report = Integrator().Run(world.dataset);
    report.linkage.clusters.label_of_record =
        world.truth.entity_of_record;
    report.linkage.clusters.num_clusters = world.truth.num_entities();
    report.claims = fusion::ClaimDb::FromPipeline(
        world.dataset, report.linkage.clusters, report.schema,
        report.normalizer, nullptr);
    report.claims.CanonicalizeNumericValues(0.02);
    report.fusion = fusion::AccuCopyFusion().Resolve(report.claims);
    add("oracle linkage", report);
  }

  // Toggles.
  {
    IntegratorConfig config;
    config.linkage_feedback = false;
    add("no feedback loop", Integrator(config).Run(world.dataset));
  }
  {
    IntegratorConfig config;
    config.numeric_snap_tolerance = 0.0;
    add("no numeric snapping", Integrator(config).Run(world.dataset));
  }
  {
    IntegratorConfig config;
    config.fusion = FusionKind::kVote;
    add("vote instead of accucopy", Integrator(config).Run(world.dataset));
  }
  {
    IntegratorConfig config;
    config.linker.use_meta_blocking = true;
    add("meta-blocking on", Integrator(config).Run(world.dataset));
  }

  table.Print("Table E18: stage substitutions and feature toggles");
  return 0;
}
