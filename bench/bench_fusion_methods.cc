// E2 — Fusion-method comparison in the presence of copiers (the headline
// AccuCopy table, VLDB'09 shape): majority voting is fooled by copied
// errors; accuracy-aware methods help; copy-aware fusion wins. Plus the
// parallel-scaling section: seed-style map-based Accu vs the interned
// executor-parallel implementation, with result-equivalence checks.
#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "bdi/common/executor.h"
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/fusion/accu.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/baselines.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/fusion/truthfinder.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::fusion;

namespace {

// The seed implementation of AccuFusion::Resolve (string-keyed std::map
// vote tables, no interning, no precomputation, single-threaded), kept
// verbatim as the perf baseline the scaling table measures against.
FusionResult SeedAccuResolve(const ClaimDb& db, const AccuConfig& config) {
  const std::vector<DataItem>& items = db.items();
  size_t num_sources = db.num_sources();
  FusionResult result;
  result.chosen.resize(items.size());
  result.confidence.resize(items.size(), 0.0);
  result.source_accuracy.assign(num_sources, config.initial_accuracy);

  std::vector<double> next_accuracy(num_sources, 0.0);
  std::vector<double> claim_count(num_sources, 0.0);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::fill(next_accuracy.begin(), next_accuracy.end(), 0.0);
    std::fill(claim_count.begin(), claim_count.end(), 0.0);

    for (size_t i = 0; i < items.size(); ++i) {
      const DataItem& item = items[i];
      if (item.claims.empty()) continue;

      std::map<std::string, double> score;
      for (const Claim& claim : item.claims) {
        double accuracy =
            std::clamp(result.source_accuracy[claim.source],
                       config.min_accuracy, config.max_accuracy);
        score[claim.value] +=
            std::log(config.n_false_values * accuracy / (1.0 - accuracy));
      }

      if (config.similarity_rho > 0.0 && score.size() > 1) {
        std::map<std::string, double> adjusted;
        for (const auto& [value, base] : score) {
          double boost = 0.0;
          for (const auto& [other, other_score] : score) {
            if (other == value) continue;
            boost += ClaimValueSimilarity(value, other) * other_score;
          }
          adjusted[value] = base + config.similarity_rho * boost;
        }
        score = std::move(adjusted);
      }

      double max_score = -1e300;
      for (const auto& [value, s] : score) max_score = std::max(max_score, s);
      double z = 0.0;
      for (const auto& [value, s] : score) z += std::exp(s - max_score);
      std::string best;
      double best_probability = -1.0;
      std::map<std::string, double> probability;
      for (const auto& [value, s] : score) {
        double p = std::exp(s - max_score) / z;
        probability[value] = p;
        if (p > best_probability) {
          best_probability = p;
          best = value;
        }
      }
      result.chosen[i] = best;
      result.confidence[i] = best_probability;

      for (const Claim& claim : item.claims) {
        next_accuracy[claim.source] += probability[claim.value];
        claim_count[claim.source] += 1.0;
      }
    }

    double max_delta = 0.0;
    for (size_t s = 0; s < num_sources; ++s) {
      double updated = claim_count[s] > 0.0
                           ? next_accuracy[s] / claim_count[s]
                           : config.initial_accuracy;
      updated = std::clamp(updated, config.min_accuracy,
                           config.max_accuracy);
      max_delta = std::max(max_delta,
                           std::abs(updated - result.source_accuracy[s]));
      result.source_accuracy[s] = updated;
    }
    if (max_delta < config.epsilon) break;
  }
  return result;
}

bool SameChosen(const FusionResult& a, const FusionResult& b) {
  return a.chosen == b.chosen;
}

double MaxAccuracyDiff(const FusionResult& a, const FusionResult& b) {
  double m = 0.0;
  for (size_t s = 0; s < a.source_accuracy.size(); ++s) {
    m = std::max(m, std::abs(a.source_accuracy[s] - b.source_accuracy[s]));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMain bench_main("fusion_methods", argc, argv);
  size_t threads = bench_main.threads();
  Executor::Configure(threads);
  bench::JsonReporter& json = bench_main.json();
  bench::Banner("E2", "fusion methods on a corpus with copiers",
                "precision ordering vote < accu <= accusim <= accucopy; "
                "accucopy also has the lowest accuracy-estimation error");

  synth::SyntheticWorld world =
      synth::GenerateWorld(bench::CopierWorldConfig());
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  std::printf("corpus: %zu sources (%d copiers at copy rate 0.9), %zu items, "
              "%zu claims\n\n",
              db.num_sources(), 8, db.items().size(), db.num_claims());

  struct Entry {
    const char* name;
    std::unique_ptr<FusionMethod> method;
  };
  AccuConfig accusim;
  accusim.similarity_rho = 0.3;
  std::vector<Entry> methods;
  methods.push_back({"vote", std::make_unique<VoteFusion>()});
  methods.push_back({"2-estimates", std::make_unique<TwoEstimatesFusion>()});
  methods.push_back(
      {"pooled-investment", std::make_unique<PooledInvestmentFusion>()});
  methods.push_back({"truthfinder", std::make_unique<TruthFinderFusion>()});
  methods.push_back({"accu", std::make_unique<AccuFusion>()});
  methods.push_back({"accusim", std::make_unique<AccuFusion>(accusim)});
  methods.push_back({"accucopy", std::make_unique<AccuCopyFusion>()});

  TextTable table({"method", "precision", "accuracy MAE", "iterations",
                   "runtime ms"});
  for (const Entry& entry : methods) {
    WallTimer timer;
    FusionResult result = entry.method->Resolve(db);
    double ms = timer.ElapsedMillis();
    FusionQuality quality = EvaluateFusion(db, result, world.truth);
    double mae = AccuracyEstimationError(result, world.truth);
    table.AddRow({entry.name, FormatDouble(quality.precision, 4),
                  FormatDouble(mae, 4), std::to_string(result.iterations),
                  FormatDouble(ms, 1)});
  }
  table.Print("Table E2: fusion precision with 8/20 sources copying");

  // The same comparison without copiers, as the control condition.
  synth::WorldConfig clean_config = bench::CopierWorldConfig(400, 20, 0);
  synth::SyntheticWorld clean = synth::GenerateWorld(clean_config);
  ClaimDb clean_db =
      ClaimDb::FromGroundTruth(clean.truth, clean.dataset.num_sources());
  TextTable control({"method", "precision", "accuracy MAE"});
  for (const Entry& entry : methods) {
    FusionResult result = entry.method->Resolve(clean_db);
    FusionQuality quality = EvaluateFusion(clean_db, result, clean.truth);
    control.AddRow({entry.name, FormatDouble(quality.precision, 4),
                    FormatDouble(AccuracyEstimationError(result, clean.truth),
                                 4)});
  }
  control.Print("Table E2b (control): same sources, no copiers");

  // Calibration of the reported confidences (accu, copier corpus).
  FusionResult accu_result = AccuFusion().Resolve(db);
  CalibrationReport calibration =
      EvaluateCalibration(db, accu_result, world.truth);
  TextTable calibration_table(
      {"confidence bucket", "items", "mean confidence", "accuracy"});
  for (const CalibrationBucket& bucket : calibration.buckets) {
    if (bucket.items == 0) continue;
    calibration_table.AddRow(
        {FormatDouble(bucket.lower, 1) + "-" + FormatDouble(bucket.upper, 1),
         std::to_string(bucket.items),
         FormatDouble(bucket.mean_confidence, 3),
         FormatDouble(bucket.empirical_accuracy, 3)});
  }
  calibration_table.Print(
      "Table E2c: reliability of accu confidences (ECE " +
      FormatDouble(calibration.expected_calibration_error, 4) + ")");

  // Parallel-scaling section on a larger corpus: seed-style Accu (map
  // based, serial) vs the interned implementation serially and at
  // --threads. The equivalence columns assert identical chosen values and
  // accuracies within 1e-9 across all paths.
  synth::SyntheticWorld big_world =
      synth::GenerateWorld(bench::CopierWorldConfig(4000, 24, 8));
  ClaimDb big_db = ClaimDb::FromGroundTruth(big_world.truth,
                                            big_world.dataset.num_sources());
  size_t big_items = big_db.items().size();
  std::printf("\nscaling corpus: %zu items, %zu claims, %zu sources\n",
              big_items, big_db.num_claims(), big_db.num_sources());

  TextTable scaling({"method", "path", "threads", "wall ms", "items/s",
                     "speedup vs seed", "chosen =", "max |dA|"});
  bool all_identical = true;
  double worst_accuracy_diff = 0.0;
  struct ScalingEntry {
    const char* name;
    double rho;
    bool accucopy;
  };
  for (const ScalingEntry& entry :
       {ScalingEntry{"accu", 0.0, false}, ScalingEntry{"accusim", 0.3, false},
        ScalingEntry{"accucopy", 0.0, true}}) {
    AccuConfig base;
    base.similarity_rho = entry.rho;

    // Seed baseline (Accu family only; the seed AccuCopy shares this inner
    // loop, so accucopy scales against its own serial path).
    FusionResult seed_result;
    double seed_ms = 0.0;
    if (!entry.accucopy) {
      WallTimer timer;
      seed_result = SeedAccuResolve(big_db, base);
      seed_ms = timer.ElapsedMillis();
      scaling.AddRow({entry.name, "seed (map-based)", "1",
                      FormatDouble(seed_ms, 1),
                      FormatDouble(1000.0 * big_items / seed_ms, 0), "1.00",
                      "-", "-"});
      json.Add(std::string(entry.name) + "_seed", seed_ms / 1000.0, 1,
               1000.0 * big_items / seed_ms);
    }

    FusionResult serial_result, parallel_result;
    double serial_ms = 0.0, parallel_ms = 0.0;
    for (bool parallel : {false, true}) {
      AccuConfig config = base;
      config.num_threads = parallel ? threads : 1;
      WallTimer timer;
      FusionResult r;
      if (entry.accucopy) {
        AccuCopyConfig cc;
        cc.accu = config;
        cc.copy.num_threads = config.num_threads;
        r = AccuCopyFusion(cc).Resolve(big_db);
      } else {
        r = AccuFusion(config).Resolve(big_db);
      }
      double ms = timer.ElapsedMillis();
      (parallel ? parallel_result : serial_result) = r;
      (parallel ? parallel_ms : serial_ms) = ms;
    }

    const FusionResult& reference =
        entry.accucopy ? serial_result : seed_result;
    double reference_ms = entry.accucopy ? serial_ms : seed_ms;
    for (bool parallel : {false, true}) {
      const FusionResult& r = parallel ? parallel_result : serial_result;
      double ms = parallel ? parallel_ms : serial_ms;
      bool identical = SameChosen(reference, r);
      double da = MaxAccuracyDiff(reference, r);
      all_identical = all_identical && identical &&
                      SameChosen(serial_result, parallel_result);
      worst_accuracy_diff = std::max(worst_accuracy_diff, da);
      size_t t = parallel ? threads : 1;
      scaling.AddRow({entry.name, "interned",
                      std::to_string(t), FormatDouble(ms, 1),
                      FormatDouble(1000.0 * big_items / ms, 0),
                      FormatDouble(reference_ms / ms, 2),
                      identical ? "yes" : "NO", FormatDouble(da, 12)});
      json.Add(std::string(entry.name) + (parallel ? "_parallel" : "_serial"),
               ms / 1000.0, t, 1000.0 * big_items / ms);
    }
  }
  scaling.Print("Table E2d: fusion parallel scaling (" +
                std::to_string(threads) + " threads vs serial seed path)");
  std::printf("equivalence: chosen identical across paths: %s; worst "
              "accuracy delta %.3g (must be < 1e-9)\n",
              all_identical ? "yes" : "NO", worst_accuracy_diff);
  json.Note("identical_chosen", all_identical ? "true" : "false");
  json.Note("threads", std::to_string(threads));
  return all_identical ? 0 : 1;
}
