// E2 — Fusion-method comparison in the presence of copiers (the headline
// AccuCopy table, VLDB'09 shape): majority voting is fooled by copied
// errors; accuracy-aware methods help; copy-aware fusion wins.
#include <memory>
#include <vector>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/fusion/accu.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/baselines.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/fusion/truthfinder.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::fusion;

int main() {
  bench::Banner("E2", "fusion methods on a corpus with copiers",
                "precision ordering vote < accu <= accusim <= accucopy; "
                "accucopy also has the lowest accuracy-estimation error");

  synth::SyntheticWorld world =
      synth::GenerateWorld(bench::CopierWorldConfig());
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  std::printf("corpus: %zu sources (%d copiers at copy rate 0.9), %zu items, "
              "%zu claims\n\n",
              db.num_sources(), 8, db.items().size(), db.num_claims());

  struct Entry {
    const char* name;
    std::unique_ptr<FusionMethod> method;
  };
  AccuConfig accusim;
  accusim.similarity_rho = 0.3;
  std::vector<Entry> methods;
  methods.push_back({"vote", std::make_unique<VoteFusion>()});
  methods.push_back({"2-estimates", std::make_unique<TwoEstimatesFusion>()});
  methods.push_back(
      {"pooled-investment", std::make_unique<PooledInvestmentFusion>()});
  methods.push_back({"truthfinder", std::make_unique<TruthFinderFusion>()});
  methods.push_back({"accu", std::make_unique<AccuFusion>()});
  methods.push_back({"accusim", std::make_unique<AccuFusion>(accusim)});
  methods.push_back({"accucopy", std::make_unique<AccuCopyFusion>()});

  TextTable table({"method", "precision", "accuracy MAE", "iterations",
                   "runtime ms"});
  for (const Entry& entry : methods) {
    WallTimer timer;
    FusionResult result = entry.method->Resolve(db);
    double ms = timer.ElapsedMillis();
    FusionQuality quality = EvaluateFusion(db, result, world.truth);
    double mae = AccuracyEstimationError(result, world.truth);
    table.AddRow({entry.name, FormatDouble(quality.precision, 4),
                  FormatDouble(mae, 4), std::to_string(result.iterations),
                  FormatDouble(ms, 1)});
  }
  table.Print("Table E2: fusion precision with 8/20 sources copying");

  // The same comparison without copiers, as the control condition.
  synth::WorldConfig clean_config = bench::CopierWorldConfig(400, 20, 0);
  synth::SyntheticWorld clean = synth::GenerateWorld(clean_config);
  ClaimDb clean_db =
      ClaimDb::FromGroundTruth(clean.truth, clean.dataset.num_sources());
  TextTable control({"method", "precision", "accuracy MAE"});
  for (const Entry& entry : methods) {
    FusionResult result = entry.method->Resolve(clean_db);
    FusionQuality quality = EvaluateFusion(clean_db, result, clean.truth);
    control.AddRow({entry.name, FormatDouble(quality.precision, 4),
                    FormatDouble(AccuracyEstimationError(result, clean.truth),
                                 4)});
  }
  control.Print("Table E2b (control): same sources, no copiers");

  // Calibration of the reported confidences (accu, copier corpus).
  FusionResult accu_result = AccuFusion().Resolve(db);
  CalibrationReport calibration =
      EvaluateCalibration(db, accu_result, world.truth);
  TextTable calibration_table(
      {"confidence bucket", "items", "mean confidence", "accuracy"});
  for (const CalibrationBucket& bucket : calibration.buckets) {
    if (bucket.items == 0) continue;
    calibration_table.AddRow(
        {FormatDouble(bucket.lower, 1) + "-" + FormatDouble(bucket.upper, 1),
         std::to_string(bucket.items),
         FormatDouble(bucket.mean_confidence, 3),
         FormatDouble(bucket.empirical_accuracy, 3)});
  }
  calibration_table.Print(
      "Table E2c: reliability of accu confidences (ECE " +
      FormatDouble(calibration.expected_calibration_error, 4) + ")");
  return 0;
}
