// E17 — Source discovery ("redundancy as a friend"): starting from one
// seed site, searching the identifiers of already-crawled pages discovers
// the remaining product sources — head identifiers appear in many sources
// — while undirected crawling wastes its budget on non-product sites.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/discovery/crawler.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::discovery;

int main() {
  bench::Banner("E17", "focused source discovery vs undirected crawling",
                "at every page budget the identifier-driven crawler covers "
                "more entities and finds more product sources; distractor "
                "sites are only visited once the product web is exhausted");

  // The hidden web: 20 product sources + 20 distractor sites.
  synth::WorldConfig config;
  config.seed = 2015;
  config.category = "camera";
  config.num_entities = 400;
  config.num_sources = 20;
  config.identifier_presence_prob = 0.95;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  Dataset web = std::move(world.dataset);
  std::vector<EntityId> labels = world.truth.entity_of_record;
  AddDistractorSources(&web, 20, 40, 77, &labels);
  SearchIndex index(web);
  std::printf("hidden web: %zu sites (%d product), %zu pages, "
              "%zu indexed identifier tokens\n\n",
              web.num_sources(), 20, web.num_records(),
              index.num_indexed_tokens());

  auto coverage_at = [](const DiscoveryResult& result, size_t budget) {
    DiscoveryStep best;
    for (const DiscoveryStep& step : result.curve) {
      if (step.pages_crawled <= budget) best = step;
    }
    return best;
  };

  DiscoveryConfig discovery_config;
  discovery_config.page_budget = 2600;
  DiscoveryResult focused =
      FocusedDiscovery(web, index, labels, discovery_config);
  DiscoveryResult random = RandomDiscovery(web, labels, discovery_config);

  TextTable table({"pages crawled", "focused: entities", "focused: sources",
                   "random: entities", "random: sources",
                   "random: distractors hit"});
  for (size_t budget : {100u, 200u, 400u, 800u, 1600u, 2600u}) {
    DiscoveryStep f = coverage_at(focused, budget);
    DiscoveryStep r = coverage_at(random, budget);
    table.AddRow({std::to_string(budget),
                  std::to_string(f.entities_covered),
                  std::to_string(f.sources_discovered),
                  std::to_string(r.entities_covered),
                  std::to_string(r.sources_discovered),
                  std::to_string(r.sources_visited -
                                 r.sources_discovered)});
  }
  table.Print("Figure E17: discovery progress vs crawl budget");

  std::printf("focused crawl order (first 10 sites): ");
  for (size_t i = 0; i < std::min<size_t>(10, focused.crawl_order.size());
       ++i) {
    std::printf("%s%d", i == 0 ? "" : ", ", focused.crawl_order[i]);
  }
  std::printf("  (ids < 20 are product sources)\n");
  return 0;
}
