// E6 — Blocking trade-off: pairs completeness vs reduction ratio for each
// blocker, plus the effect of meta-blocking's weighting/pruning schemes on
// a redundancy-heavy token block collection.
#include <memory>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/linkage/blocking.h"
#include "bdi/linkage/meta_blocking.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::linkage;

int main() {
  bench::Banner("E6", "blocking quality/efficiency trade-off",
                "identifier blocking: near-perfect reduction at high "
                "completeness; token blocking: best completeness, most "
                "candidates; meta-blocking prunes most comparisons while "
                "keeping the bulk of completeness");

  synth::WorldConfig config;
  config.seed = 77;
  config.category = "camera";
  config.num_entities = 1500;
  config.num_sources = 16;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(world.dataset);
  AttrRoles roles = AttrRoles::Detect(stats);
  std::printf("corpus: %zu records across %zu sources\n\n",
              world.dataset.num_records(), world.dataset.num_sources());

  TextTable table({"blocker", "candidates", "pairs completeness",
                   "reduction ratio", "time ms"});
  std::vector<std::pair<std::string, std::unique_ptr<Blocker>>> blockers;
  blockers.emplace_back("identifier", std::make_unique<IdentifierBlocker>());
  blockers.emplace_back("token", std::make_unique<TokenBlocker>());
  blockers.emplace_back("sorted-neighborhood",
                        std::make_unique<SortedNeighborhoodBlocker>());
  blockers.emplace_back("canopy", std::make_unique<CanopyBlocker>());

  std::vector<Block> token_blocks;
  for (const auto& [name, blocker] : blockers) {
    WallTimer timer;
    std::vector<Block> blocks = blocker->MakeBlocksAll(world.dataset, &roles);
    std::vector<CandidatePair> pairs = BlocksToPairs(world.dataset, blocks);
    double ms = timer.ElapsedMillis();
    BlockingQuality quality =
        EvaluateBlocking(world.dataset, pairs, world.truth.entity_of_record);
    table.AddRow({name, std::to_string(quality.num_candidates),
                  FormatDouble(quality.pairs_completeness, 3),
                  FormatDouble(quality.reduction_ratio, 4),
                  FormatDouble(ms, 1)});
    if (name == "token") token_blocks = std::move(blocks);
  }
  table.Print("Figure E6: pairs completeness vs reduction ratio");

  TextTable meta({"scheme", "pruning", "candidates", "pairs completeness",
                  "reduction ratio"});
  for (auto scheme : {MetaBlockingScheme::kCommonBlocks,
                      MetaBlockingScheme::kJaccard,
                      MetaBlockingScheme::kArcs}) {
    for (auto pruning : {MetaBlockingPruning::kWeightEdge,
                         MetaBlockingPruning::kCardinalityNode}) {
      MetaBlockingConfig meta_config;
      meta_config.scheme = scheme;
      meta_config.pruning = pruning;
      std::vector<CandidatePair> pairs =
          MetaBlock(world.dataset, token_blocks, meta_config);
      BlockingQuality quality = EvaluateBlocking(
          world.dataset, pairs, world.truth.entity_of_record);
      const char* scheme_name =
          scheme == MetaBlockingScheme::kCommonBlocks ? "CBS"
          : scheme == MetaBlockingScheme::kJaccard    ? "JS"
                                                      : "ARCS";
      const char* pruning_name =
          pruning == MetaBlockingPruning::kWeightEdge ? "WEP" : "CNP";
      meta.AddRow({scheme_name, pruning_name,
                   std::to_string(quality.num_candidates),
                   FormatDouble(quality.pairs_completeness, 3),
                   FormatDouble(quality.reduction_ratio, 4)});
    }
  }
  meta.Print("Table E6b: meta-blocking restructuring of the token blocks");
  return 0;
}
