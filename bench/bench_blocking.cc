// E6 — Blocking trade-off: pairs completeness vs reduction ratio for each
// blocker, plus the effect of meta-blocking's weighting/pruning schemes on
// a redundancy-heavy token block collection. With --json, writes
// BENCH_blocking.json: per-blocker pair-generation wall time, the blocking
// graph build wall time (serial vs --threads), and the pipeline metrics
// snapshot carrying the pairs generated/pruned counters.
#include <memory>

#include "bdi/common/metrics.h"
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/linkage/blocking.h"
#include "bdi/linkage/linkage.h"
#include "bdi/linkage/meta_blocking.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::linkage;

int main(int argc, char** argv) {
  bench::Banner("E6", "blocking quality/efficiency trade-off",
                "identifier blocking: near-perfect reduction at high "
                "completeness; token blocking: best completeness, most "
                "candidates; meta-blocking prunes most comparisons while "
                "keeping the bulk of completeness");

  bench::BenchMain bench_main("blocking", argc, argv);
  size_t threads = bench_main.threads();
  bench::JsonReporter& json = bench_main.json();
  if (json.enabled()) metrics::SetEnabled(true);

  synth::WorldConfig config;
  config.seed = 77;
  config.category = "camera";
  config.num_entities = 1500;
  config.num_sources = 16;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  schema::AttributeStatistics stats =
      schema::AttributeStatistics::Compute(world.dataset);
  AttrRoles roles = AttrRoles::Detect(stats);
  std::printf("corpus: %zu records across %zu sources\n\n",
              world.dataset.num_records(), world.dataset.num_sources());

  TextTable table({"blocker", "candidates", "pairs completeness",
                   "reduction ratio", "time ms"});
  std::vector<std::pair<std::string, std::unique_ptr<Blocker>>> blockers;
  blockers.emplace_back("identifier", std::make_unique<IdentifierBlocker>());
  blockers.emplace_back("token", std::make_unique<TokenBlocker>());
  blockers.emplace_back("sorted-neighborhood",
                        std::make_unique<SortedNeighborhoodBlocker>());
  blockers.emplace_back("canopy", std::make_unique<CanopyBlocker>());

  std::vector<Block> token_blocks;
  for (const auto& [name, blocker] : blockers) {
    WallTimer timer;
    std::vector<Block> blocks = blocker->MakeBlocksAll(world.dataset, &roles);
    std::vector<CandidatePair> pairs = BlocksToPairs(world.dataset, blocks);
    double seconds = timer.ElapsedSeconds();
    BlockingQuality quality =
        EvaluateBlocking(world.dataset, pairs, world.truth.entity_of_record);
    table.AddRow({name, std::to_string(quality.num_candidates),
                  FormatDouble(quality.pairs_completeness, 3),
                  FormatDouble(quality.reduction_ratio, 4),
                  FormatDouble(seconds * 1000.0, 1)});
    json.Add("blocking/" + name + "/pairs", seconds, threads,
             seconds > 0.0 ? static_cast<double>(pairs.size()) / seconds
                           : 0.0);
    if (name == "token") token_blocks = std::move(blocks);
  }
  table.Print("Figure E6: pairs completeness vs reduction ratio");

  // Blocking graph build (meta-blocking's dominant cost), serial vs the
  // thread budget — same chunking either way, so the graphs are identical.
  {
    WallTimer timer;
    std::vector<WeightedPair> serial_graph = BuildBlockingGraph(
        world.dataset, token_blocks, MetaBlockingScheme::kArcs,
        /*allow_same_source=*/false, /*num_threads=*/1);
    double serial_seconds = timer.ElapsedSeconds();
    timer.Reset();
    std::vector<WeightedPair> parallel_graph = BuildBlockingGraph(
        world.dataset, token_blocks, MetaBlockingScheme::kArcs,
        /*allow_same_source=*/false, threads);
    double parallel_seconds = timer.ElapsedSeconds();
    bool identical = serial_graph.size() == parallel_graph.size();
    for (size_t i = 0; identical && i < serial_graph.size(); ++i) {
      identical = serial_graph[i].pair == parallel_graph[i].pair &&
                  serial_graph[i].weight == parallel_graph[i].weight;
    }
    std::printf("\ngraph build (ARCS, %zu edges): serial %.1f ms, "
                "%zu threads %.1f ms, identical: %s\n",
                serial_graph.size(), serial_seconds * 1000.0, threads,
                parallel_seconds * 1000.0, identical ? "yes" : "NO");
    json.Add("blocking/graph_build", serial_seconds, 1,
             serial_seconds > 0.0
                 ? static_cast<double>(serial_graph.size()) / serial_seconds
                 : 0.0);
    json.Add("blocking/graph_build", parallel_seconds, threads,
             parallel_seconds > 0.0
                 ? static_cast<double>(parallel_graph.size()) /
                       parallel_seconds
                 : 0.0);
    json.Note("graph_identical_output", identical ? "true" : "false");
  }

  // Matching-path identity: the batch bound pass (slab + vectorized
  // signature reductions, prefilter on) must produce the per-pair
  // cascade's exact match list and scores — serial and across the thread
  // budget. This is the end-to-end gate for the SIMD/batch dispatch: any
  // divergence in the bound kernels or the slab compaction shows up here
  // as identical: NO.
  {
    auto run_matching = [&](bool use_batch, size_t num_threads) {
      LinkerConfig linker_config;
      linker_config.use_prefilter = true;
      linker_config.use_batch = use_batch;
      linker_config.num_threads = num_threads;
      Linker linker(&world.dataset, linker_config);
      return linker.Run();
    };
    WallTimer timer;
    LinkageResult per_pair = run_matching(/*use_batch=*/false, 1);
    double per_pair_seconds = timer.ElapsedSeconds();
    timer.Reset();
    LinkageResult batch_serial = run_matching(/*use_batch=*/true, 1);
    double batch_seconds = timer.ElapsedSeconds();
    LinkageResult batch_parallel = run_matching(/*use_batch=*/true, threads);
    auto same = [](const LinkageResult& x, const LinkageResult& y) {
      if (x.matches.size() != y.matches.size()) return false;
      for (size_t i = 0; i < x.matches.size(); ++i) {
        if (x.matches[i].pair.a != y.matches[i].pair.a ||
            x.matches[i].pair.b != y.matches[i].pair.b ||
            x.matches[i].score != y.matches[i].score) {
          return false;
        }
      }
      return true;
    };
    bool identical =
        same(per_pair, batch_serial) && same(per_pair, batch_parallel);
    std::printf("\nmatching batch bound pass (%zu candidates, %zu matches): "
                "per-pair %.1f ms, batch %.1f ms, identical: %s\n",
                per_pair.num_candidates, per_pair.matches.size(),
                per_pair.matching_seconds * 1000.0,
                batch_serial.matching_seconds * 1000.0,
                identical ? "yes" : "NO");
    json.Add("matching/per_pair", per_pair_seconds, 1,
             per_pair_seconds > 0.0
                 ? static_cast<double>(per_pair.num_candidates) /
                       per_pair_seconds
                 : 0.0);
    json.Add("matching/batch", batch_seconds, 1,
             batch_seconds > 0.0
                 ? static_cast<double>(batch_serial.num_candidates) /
                       batch_seconds
                 : 0.0);
    json.Note("matching_batch_identical_output",
              identical ? "true" : "false");
  }

  TextTable meta({"scheme", "pruning", "candidates", "pairs completeness",
                  "reduction ratio"});
  for (auto scheme : {MetaBlockingScheme::kCommonBlocks,
                      MetaBlockingScheme::kJaccard,
                      MetaBlockingScheme::kArcs}) {
    for (auto pruning : {MetaBlockingPruning::kWeightEdge,
                         MetaBlockingPruning::kCardinalityNode}) {
      MetaBlockingConfig meta_config;
      meta_config.scheme = scheme;
      meta_config.pruning = pruning;
      std::vector<CandidatePair> pairs =
          MetaBlock(world.dataset, token_blocks, meta_config);
      BlockingQuality quality = EvaluateBlocking(
          world.dataset, pairs, world.truth.entity_of_record);
      const char* scheme_name =
          scheme == MetaBlockingScheme::kCommonBlocks ? "CBS"
          : scheme == MetaBlockingScheme::kJaccard    ? "JS"
                                                      : "ARCS";
      const char* pruning_name =
          pruning == MetaBlockingPruning::kWeightEdge ? "WEP" : "CNP";
      meta.AddRow({scheme_name, pruning_name,
                   std::to_string(quality.num_candidates),
                   FormatDouble(quality.pairs_completeness, 3),
                   FormatDouble(quality.reduction_ratio, 4)});
    }
  }
  meta.Print("Table E6b: meta-blocking restructuring of the token blocks");
  bench::AttachMetricsSnapshot(json);
  return 0;
}
