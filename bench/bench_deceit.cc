// E20 — Veracity beyond honest mistakes: sources that *lie consistently*
// (spec inflation). Random-error fusion models degrade with the number of
// liars — a consistent lie looks like a confident source — while
// bias detection + correction recovers most of the loss. Copy detection
// is blind to this failure mode (nothing is copied).
#include <set>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/fusion/accu.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/bias.h"
#include "bdi/fusion/evaluation.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::fusion;

int main() {
  bench::Banner("E20", "fusion under deceitful (spec-inflating) sources",
                "precision of vote/accu/accucopy falls as liars are added; "
                "bias-corrected accu recovers; detected biases match the "
                "planted inflation");

  TextTable table({"#liars", "vote", "accu", "accucopy", "accu+debias",
                   "flagged liars"});
  for (int liars : {0, 2, 4, 6}) {
    synth::WorldConfig config;
    config.seed = 1409;
    config.category = "stock";
    config.num_entities = 300;
    config.num_sources = 14;
    config.num_deceitful = liars;
    config.deceit_in_head = true;
    config.deceit_inflation = 0.25;
    config.source_accuracy_min = 0.8;
    config.source_accuracy_max = 0.95;
    config.format_variation_prob = 0.0;
    synth::SyntheticWorld world = synth::GenerateWorld(config);
    ClaimDb db =
        ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());

    double vote =
        EvaluateFusion(db, VoteFusion().Resolve(db), world.truth).precision;
    FusionResult accu_result = AccuFusion().Resolve(db);
    double accu = EvaluateFusion(db, accu_result, world.truth).precision;
    double accucopy =
        EvaluateFusion(db, AccuCopyFusion().Resolve(db), world.truth)
            .precision;

    std::vector<SourceBias> biases = DetectBias(db, accu_result);
    std::set<SourceId> flagged;
    for (const SourceBias& bias : biases) flagged.insert(bias.source);
    size_t correct_flags = 0;
    for (SourceId liar : world.truth.deceitful_sources) {
      if (flagged.count(liar) > 0) ++correct_flags;
    }
    // Iterated correction: re-detect against the improved consensus.
    ClaimDb corrected = DebiasClaims(db, biases);
    for (int round = 0; round < 2; ++round) {
      FusionResult round_reference = AccuFusion().Resolve(corrected);
      std::vector<SourceBias> more = DetectBias(corrected, round_reference);
      if (more.empty()) break;
      corrected = DebiasClaims(corrected, more);
    }
    double debias =
        EvaluateFusion(corrected, AccuFusion().Resolve(corrected),
                       world.truth)
            .precision;

    table.AddRow({std::to_string(liars), FormatDouble(vote, 3),
                  FormatDouble(accu, 3), FormatDouble(accucopy, 3),
                  FormatDouble(debias, 3),
                  std::to_string(correct_flags) + "/" +
                      std::to_string(liars) + " (+" +
                      std::to_string(flagged.size() - correct_flags) +
                      " false)"});
  }
  table.Print("Figure E20: precision vs number of deceitful sources");

  // Show a few detected biases against the planted 25% inflation.
  synth::WorldConfig config;
  config.seed = 1409;
  config.category = "stock";
  config.num_entities = 300;
  config.num_sources = 14;
  config.num_deceitful = 4;
  config.format_variation_prob = 0.0;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult reference = AccuFusion().Resolve(db);
  TextTable evidence({"source", "attribute", "estimated bias",
                      "dispersion", "items"});
  int shown = 0;
  for (const SourceBias& bias : DetectBias(db, reference)) {
    if (shown++ >= 8) break;
    evidence.AddRow({"s" + std::to_string(bias.source),
                     world.truth.canonical_attrs[bias.attr],
                     FormatDouble(bias.relative_bias, 3),
                     FormatDouble(bias.dispersion, 3),
                     std::to_string(bias.items)});
  }
  evidence.Print("Table E20b: detected biases (planted inflation = +0.25)");
  return 0;
}
