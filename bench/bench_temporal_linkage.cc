// E13 — Temporal record linkage: entities evolve (rebrands, revision
// suffixes) and pages churn, so a static matcher over-splits long-gap
// observations. Disagreement decay (time-relaxed thresholds backed by
// continuity evidence) recovers the cross-gap matches.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/linkage/temporal.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::linkage;

namespace {

synth::TemporalCorpus MakeCorpus(double drift) {
  synth::WorldConfig config;
  config.seed = 311;
  config.num_entities = 150;
  config.num_sources = 8;
  config.publish_identifiers = false;  // ids would trivialize the task
  synth::TemporalConfig temporal;
  temporal.name_drift_rate = drift;
  temporal.record_death_rate = 0.35;  // gappy observation
  temporal.record_birth_rate = 0.05;
  temporal.source_death_rate = 0.0;
  temporal.entity_birth_rate = 0.0;
  temporal.value_change_rate = 0.05;
  return synth::GenerateTemporalCorpus(config, temporal, 6);
}

}  // namespace

int main() {
  bench::Banner("E13", "temporal vs static linkage on evolving entities",
                "with name drift, the static threshold loses recall that "
                "the time-decayed threshold recovers at equal precision; "
                "with no drift the two coincide");

  TextTable table({"name drift", "variant", "precision", "recall", "f1",
                   "relaxed matches"});
  for (double drift : {0.0, 0.15, 0.30, 0.45}) {
    synth::TemporalCorpus corpus = MakeCorpus(drift);
    TemporalLinkConfig temporal_config;
    TemporalLinkConfig static_config = temporal_config;
    static_config.min_threshold = static_config.base_threshold;
    static_config.same_source_min_threshold = static_config.base_threshold;
    static_config.min_value_threshold = static_config.base_value_threshold;

    for (const auto& [variant, config] :
         {std::pair<const char*, TemporalLinkConfig>{"static",
                                                     static_config},
          std::pair<const char*, TemporalLinkConfig>{"temporal",
                                                     temporal_config}}) {
      TemporalLinkageResult result =
          LinkTemporal(corpus.dataset, corpus.record_time, config);
      LinkageQuality quality = EvaluateClusters(
          result.clusters.label_of_record, corpus.entity_of_record);
      table.AddRow({FormatDouble(drift, 2), variant,
                    FormatDouble(quality.precision, 3),
                    FormatDouble(quality.recall, 3),
                    FormatDouble(quality.f1, 3),
                    std::to_string(result.relaxed_matches)});
    }
  }
  table.Print("Figure E13: linkage quality vs entity evolution rate");

  // Relaxation-floor ablation at fixed drift.
  synth::TemporalCorpus corpus = MakeCorpus(0.30);
  TextTable ablation({"name floor", "precision", "recall", "f1",
                      "relaxed matches"});
  for (double floor : {0.92, 0.90, 0.88, 0.86, 0.84}) {
    TemporalLinkConfig config;
    config.min_threshold = floor;
    TemporalLinkageResult result =
        LinkTemporal(corpus.dataset, corpus.record_time, config);
    LinkageQuality quality = EvaluateClusters(
        result.clusters.label_of_record, corpus.entity_of_record);
    ablation.AddRow({FormatDouble(floor, 2),
                     FormatDouble(quality.precision, 3),
                     FormatDouble(quality.recall, 3),
                     FormatDouble(quality.f1, 3),
                     std::to_string(result.relaxed_matches)});
  }
  ablation.Print("Table E13b: relaxation-floor ablation (drift 0.30)");
  return 0;
}
