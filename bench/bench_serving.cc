// E22 — Resident serving under mixed query/update load: the EntityStore
// publishes immutable snapshots (RCU-style swap), so reader throughput
// should barely move when a writer is concurrently applying update
// batches, and no query should ever wait on a batch. Reports sustained
// QPS and tail latency for a query-only phase and a mixed phase, plus the
// per-batch apply cost. With `--json`, writes BENCH_serving.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/serve/snapshot.h"
#include "bdi/serve/store.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::serve;

namespace {

/// Per-phase latency record: merged, sorted, percentiled.
double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  size_t at = static_cast<size_t>(p * static_cast<double>(sorted_us.size()));
  return sorted_us[std::min(at, sorted_us.size() - 1)];
}

struct PhaseResult {
  double wall_seconds = 0.0;
  size_t queries = 0;
  std::vector<double> latencies_us;  // sorted after the run

  double qps() const {
    return static_cast<double>(queries) / std::max(1e-9, wall_seconds);
  }
};

/// Runs `readers` query threads against the store until `stop` (mixed
/// phase) or until each thread drained `per_thread` queries (query-only
/// phase, stop == nullptr).
PhaseResult QueryPhase(const EntityStore& store,
                       const std::vector<std::string>& queries,
                       size_t readers, size_t per_thread,
                       std::atomic<bool>* stop) {
  std::vector<std::vector<double>> latencies(readers);
  std::vector<size_t> counts(readers, 0);
  WallTimer phase_timer;
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      size_t i = t;
      while (stop != nullptr ? !stop->load(std::memory_order_relaxed)
                             : counts[t] < per_thread) {
        const std::string& query = queries[i++ % queries.size()];
        WallTimer query_timer;
        std::shared_ptr<const Snapshot> snapshot = store.snapshot();
        volatile size_t sink = snapshot->Find(query, 5).size();
        (void)sink;
        latencies[t].push_back(query_timer.ElapsedMillis() * 1000.0);
        ++counts[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  PhaseResult result;
  result.wall_seconds = phase_timer.ElapsedSeconds();
  for (size_t t = 0; t < readers; ++t) {
    result.queries += counts[t];
    result.latencies_us.insert(result.latencies_us.end(),
                               latencies[t].begin(), latencies[t].end());
  }
  std::sort(result.latencies_us.begin(), result.latencies_us.end());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMain bench_main("serving", argc, argv);
  bench::JsonReporter& json = bench_main.json();
  bench::Banner("E22", "snapshot-swapped serving under mixed load",
                "mixed-load QPS stays close to query-only QPS (readers "
                "never block on the writer); p99 latency grows modestly; "
                "every batch publishes a fresh snapshot version");

  synth::WorldConfig config;
  config.seed = 2033;
  config.num_entities = 400;
  config.num_sources = 10;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  const size_t total = world.dataset.num_records();
  const size_t bootstrap_count = (total * 7) / 10;

  // Split: bootstrap corpus for Create, the rest as update batches. The
  // bootstrap is built by a callable because the shedding phase below
  // needs a second, identical store under a tighter admission budget.
  auto make_bootstrap = [&] {
    Dataset bootstrap;
    for (size_t r = 0; r < bootstrap_count; ++r) {
      const Record& record =
          world.dataset.record(static_cast<RecordIdx>(r));
      while (bootstrap.num_sources() <=
             static_cast<size_t>(record.source)) {
        bootstrap.AddSource(
            world.dataset
                .source(static_cast<SourceId>(bootstrap.num_sources()))
                .name);
      }
      std::vector<std::pair<std::string, std::string>> fields;
      for (const Field& field : record.fields) {
        fields.emplace_back(world.dataset.attr_name(field.attr),
                            field.value);
      }
      bootstrap.AddRecord(record.source, fields);
    }
    return bootstrap;
  };
  std::vector<std::vector<UpdateRecord>> batches;
  {
    std::vector<UpdateRecord> pending;
    for (size_t r = bootstrap_count; r < total; ++r) {
      const Record& record =
          world.dataset.record(static_cast<RecordIdx>(r));
      UpdateRecord update;
      update.source = world.dataset.source(record.source).name;
      for (const Field& field : record.fields) {
        update.fields.emplace_back(world.dataset.attr_name(field.attr),
                                   field.value);
      }
      pending.push_back(std::move(update));
      if (pending.size() == 100) {
        batches.push_back(std::move(pending));
        pending.clear();
      }
    }
    if (!pending.empty()) batches.push_back(std::move(pending));
  }

  StoreConfig store_config;
  store_config.num_shards = 8;
  WallTimer bootstrap_timer;
  Result<std::unique_ptr<EntityStore>> created =
      EntityStore::Create(make_bootstrap(), store_config);
  if (!created.ok()) {
    std::fprintf(stderr, "store bootstrap failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  EntityStore& store = *created.value();
  double bootstrap_seconds = bootstrap_timer.ElapsedSeconds();
  std::printf("bootstrap: %zu records -> %zu entities in %.1f ms; "
              "%zu update batches queued\n\n",
              store.snapshot()->num_records(),
              store.snapshot()->num_entities(), bootstrap_seconds * 1000.0,
              batches.size());

  // Query pool: representative display values spread over the corpus.
  std::vector<std::string> queries;
  for (size_t r = 0; r < bootstrap_count; r += bootstrap_count / 24 + 1) {
    const Record& record = world.dataset.record(static_cast<RecordIdx>(r));
    if (!record.fields.empty()) queries.push_back(record.fields[0].value);
  }

  const size_t readers = std::min<size_t>(bench_main.threads(), 8);

  // Phase 1: query-only baseline.
  PhaseResult query_only =
      QueryPhase(store, queries, readers, 4000, nullptr);

  // Phase 2: the same readers free-run while the writer applies every
  // queued batch; the phase ends when the writer is done.
  std::atomic<bool> stop{false};
  double apply_ms_total = 0.0;
  double apply_ms_max = 0.0;
  PhaseResult mixed;
  {
    std::thread writer([&] {
      for (const std::vector<UpdateRecord>& batch : batches) {
        Result<BatchResult> applied = store.ApplyBatch(batch);
        if (!applied.ok()) {
          std::fprintf(stderr, "batch failed: %s\n",
                       applied.status().ToString().c_str());
          break;
        }
        apply_ms_total += applied->apply_ms;
        apply_ms_max = std::max(apply_ms_max, applied->apply_ms);
      }
      stop.store(true, std::memory_order_relaxed);
    });
    mixed = QueryPhase(store, queries, readers, 0, &stop);
    writer.join();
  }

  TextTable table({"phase", "queries", "wall s", "QPS", "p50 us", "p99 us"});
  auto row = [&](const char* phase, PhaseResult& result) {
    table.AddRow({phase, std::to_string(result.queries),
                  FormatDouble(result.wall_seconds, 2),
                  FormatDouble(result.qps(), 0),
                  FormatDouble(Percentile(result.latencies_us, 0.50), 1),
                  FormatDouble(Percentile(result.latencies_us, 0.99), 1)});
  };
  // Phase 3: overload. A fresh, identical store under a one-batch
  // admission budget; several writers spam the same batches concurrently
  // and honor retry_after_ms when shed. The question the phase answers:
  // how much reader QPS survives while the store is actively shedding.
  size_t shed_count = 0;
  size_t admit_count = 0;
  PhaseResult shedding;
  {
    StoreConfig shed_config = store_config;
    shed_config.max_pending_batches = 1;
    Result<std::unique_ptr<EntityStore>> shed_created =
        EntityStore::Create(make_bootstrap(), shed_config);
    if (!shed_created.ok()) {
      std::fprintf(stderr, "shed store bootstrap failed: %s\n",
                   shed_created.status().ToString().c_str());
      return 1;
    }
    EntityStore& shed_store = *shed_created.value();
    constexpr size_t kWriters = 4;
    std::atomic<bool> shed_stop{false};
    std::atomic<size_t> shed_total{0};
    std::atomic<size_t> admit_total{0};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (size_t b = w; b < batches.size(); b += kWriters) {
          while (true) {
            BatchRejection rejection;
            Result<BatchResult> applied =
                shed_store.ApplyBatch(batches[b], &rejection);
            if (applied.ok()) {
              admit_total.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (applied.status().code() != StatusCode::kUnavailable) {
              std::fprintf(stderr, "batch failed: %s\n",
                           applied.status().ToString().c_str());
              return;
            }
            shed_total.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<long long>(
                    std::min(rejection.retry_after_ms, 5.0) * 1000.0)));
          }
        }
      });
    }
    std::thread closer([&] {
      for (std::thread& writer : writers) writer.join();
      shed_stop.store(true, std::memory_order_relaxed);
    });
    shedding = QueryPhase(shed_store, queries, readers, 0, &shed_stop);
    closer.join();
    shed_count = shed_total.load();
    admit_count = admit_total.load();
  }

  row("query-only", query_only);
  row("mixed", mixed);
  row("shedding", shedding);
  table.Print("Figure E22: serving throughput, " +
              std::to_string(readers) + " reader threads");
  std::printf(
      "overload: %zu admitted / %zu shed across %zu writer threads "
      "(every shed batch retried after its hint and eventually landed)\n",
      admit_count, shed_count, static_cast<size_t>(4));
  std::printf(
      "writer: %zu batches, %.1f ms/batch mean, %.1f ms max; final "
      "snapshot v%llu with %zu entities\n",
      batches.size(), apply_ms_total / std::max<size_t>(1, batches.size()),
      apply_ms_max,
      static_cast<unsigned long long>(store.snapshot()->version()),
      store.snapshot()->num_entities());

  json.Add("query_only", query_only.wall_seconds, readers,
           query_only.qps());
  json.Add("mixed", mixed.wall_seconds, readers, mixed.qps());
  json.Add("batch_apply", apply_ms_total / 1000.0, 1,
           static_cast<double>(batches.size()) /
               std::max(1e-9, apply_ms_total / 1000.0));
  json.Note("query_only_p50_us",
            FormatDouble(Percentile(query_only.latencies_us, 0.50), 2));
  json.Note("query_only_p99_us",
            FormatDouble(Percentile(query_only.latencies_us, 0.99), 2));
  json.Note("mixed_p50_us",
            FormatDouble(Percentile(mixed.latencies_us, 0.50), 2));
  json.Note("mixed_p99_us",
            FormatDouble(Percentile(mixed.latencies_us, 0.99), 2));
  json.Add("shedding", shedding.wall_seconds, readers, shedding.qps());
  json.Note("batch_apply_ms_max", FormatDouble(apply_ms_max, 2));
  json.Note("qps_retention_mixed_vs_query_only",
            FormatDouble(mixed.qps() / std::max(1e-9, query_only.qps()), 3));
  json.Note("shedding_p99_us",
            FormatDouble(Percentile(shedding.latencies_us, 0.99), 2));
  json.Note("shedding_admitted", std::to_string(admit_count));
  json.Note("shedding_shed", std::to_string(shed_count));
  json.Note("qps_retention_shedding_vs_query_only",
            FormatDouble(shedding.qps() / std::max(1e-9, query_only.qps()),
                         3));
  return 0;
}
