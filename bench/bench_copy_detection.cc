// E4 — Copy-detection quality vs copy rate: aggressive copiers share many
// false values and are easy to catch; light copiers blend in.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/fusion/accu.h"
#include "bdi/fusion/copy_detection.h"
#include "bdi/fusion/evaluation.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::fusion;

int main() {
  bench::Banner("E4", "copy detection vs per-item copy rate",
                "precision/recall/F1 of detected copier pairs rise with the "
                "copy rate; shared false values are the detection signal");

  TextTable table({"copy rate", "precision", "recall", "f1",
                   "detected pairs", "true pairs"});
  for (double copy_rate : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    synth::WorldConfig config = bench::CopierWorldConfig(400, 20, 6);
    config.copy_rate = copy_rate;
    synth::SyntheticWorld world = synth::GenerateWorld(config);
    ClaimDb db =
        ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
    FusionResult accu = AccuFusion().Resolve(db);
    CopyDetectionConfig detection_config;
    detection_config.copy_rate = 0.6;  // the detector does not know the truth
    std::vector<SourceDependence> dependencies = DetectCopying(
        db, accu.chosen, accu.source_accuracy, detection_config);
    CopyDetectionQuality quality =
        EvaluateCopyDetection(dependencies, world.truth, 0.5);
    table.AddRow({FormatDouble(copy_rate, 1),
                  FormatDouble(quality.precision, 3),
                  FormatDouble(quality.recall, 3),
                  FormatDouble(quality.f1, 3),
                  std::to_string(quality.detected),
                  std::to_string(quality.true_edges)});
  }
  table.Print("Figure E4: copy-detection quality vs copy rate");

  // Breakdown of the evidence for one detected pair (diagnostic view).
  synth::WorldConfig config = bench::CopierWorldConfig(400, 20, 6);
  config.copy_rate = 0.9;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());
  FusionResult accu = AccuFusion().Resolve(db);
  std::vector<SourceDependence> dependencies =
      DetectCopying(db, accu.chosen, accu.source_accuracy, {});
  TextTable evidence({"pair", "P(dep)", "common", "shared true",
                      "shared false", "different", "likely copier"});
  int shown = 0;
  for (const SourceDependence& d : dependencies) {
    if (d.probability < 0.5 || shown >= 6) continue;
    evidence.AddRow(
        {"s" + std::to_string(d.a) + "-s" + std::to_string(d.b),
         FormatDouble(d.probability, 3), std::to_string(d.common_items),
         std::to_string(d.shared_true), std::to_string(d.shared_false),
         std::to_string(d.different),
         d.likely_copier == kInvalidSource
             ? "?"
             : "s" + std::to_string(d.likely_copier)});
    ++shown;
  }
  evidence.Print("Table E4b: evidence behind detected dependencies");
  return 0;
}
