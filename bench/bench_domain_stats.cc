// E1 — Domain characterization (the Deep-Web-study style table): source
// count, page volume, attribute-name variety with its long tail, and
// head/tail redundancy. Reproduces the shape of the tutorial's motivating
// statistics (most attribute names appear in very few sources; head
// entities are covered by many sources).
#include <algorithm>
#include <map>
#include <set>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/schema/attribute_stats.h"
#include "bdi/synth/world.h"
#include "bench_util.h"

using namespace bdi;

namespace {

struct DomainStats {
  size_t sources = 0;
  size_t pages = 0;
  size_t raw_names = 0;
  double tail_name_fraction = 0.0;   // names in < 3% of sources
  size_t popular_names = 0;          // names in >= 10% of sources
  double top_name_share = 0.0;       // sources using the most common name
  double head_redundancy = 0.0;      // sources per head entity (top 10%)
  double tail_redundancy = 0.0;      // sources per tail entity (bottom 50%)
};

DomainStats Characterize(const synth::SyntheticWorld& world) {
  DomainStats stats;
  stats.sources = world.dataset.num_sources();
  stats.pages = world.dataset.num_records();

  schema::AttributeStatistics attr_stats =
      schema::AttributeStatistics::Compute(world.dataset);
  const auto& name_counts = attr_stats.name_source_counts();
  stats.raw_names = name_counts.size();
  size_t tail = 0, popular = 0, top = 0;
  for (const auto& [name, count] : name_counts) {
    if (static_cast<double>(count) <
        0.03 * static_cast<double>(stats.sources)) {
      ++tail;
    }
    if (static_cast<double>(count) >=
        0.10 * static_cast<double>(stats.sources)) {
      ++popular;
    }
    top = std::max(top, count);
  }
  stats.tail_name_fraction =
      name_counts.empty()
          ? 0.0
          : static_cast<double>(tail) / static_cast<double>(stats.raw_names);
  stats.popular_names = popular;
  stats.top_name_share =
      static_cast<double>(top) / static_cast<double>(stats.sources);

  // Redundancy by entity popularity.
  std::map<EntityId, std::set<SourceId>> sources_of;
  for (size_t r = 0; r < world.dataset.num_records(); ++r) {
    sources_of[world.truth.entity_of_record[r]].insert(
        world.dataset.record(static_cast<RecordIdx>(r)).source);
  }
  size_t n = world.truth.num_entities();
  double head_sum = 0.0, tail_sum = 0.0;
  size_t head_n = 0, tail_n = 0;
  for (size_t e = 0; e < n; ++e) {
    auto it = sources_of.find(static_cast<EntityId>(e));
    size_t cover = it == sources_of.end() ? 0 : it->second.size();
    if (e < n / 10) {
      head_sum += static_cast<double>(cover);
      ++head_n;
    } else if (e >= n / 2) {
      tail_sum += static_cast<double>(cover);
      ++tail_n;
    }
  }
  stats.head_redundancy = head_n == 0 ? 0 : head_sum / static_cast<double>(head_n);
  stats.tail_redundancy = tail_n == 0 ? 0 : tail_sum / static_cast<double>(tail_n);
  return stats;
}

}  // namespace

int main() {
  bench::Banner("E1", "domain characterization across corpus scales",
                "attribute-name variety explodes with source count; the "
                "vast majority of names live in <3% of sources; head "
                "entities enjoy far more redundancy than tail entities");

  TextTable table({"#sources", "#pages", "#attr names", "tail names",
                   "names in >=10% srcs", "top-name share",
                   "head redundancy", "tail redundancy"});
  for (int num_sources : {25, 50, 100, 200}) {
    synth::WorldConfig config;
    config.seed = 42;
    config.category = "camera";
    config.num_entities = 500;
    config.num_sources = num_sources;
    config.min_source_coverage = 0.005;
    config.num_synonyms_per_attr = 5;
    synth::SyntheticWorld world = synth::GenerateWorld(config);
    DomainStats stats = Characterize(world);
    table.AddRow({std::to_string(stats.sources), std::to_string(stats.pages),
                  std::to_string(stats.raw_names),
                  FormatDouble(100.0 * stats.tail_name_fraction, 1) + "%",
                  std::to_string(stats.popular_names),
                  FormatDouble(100.0 * stats.top_name_share, 1) + "%",
                  FormatDouble(stats.head_redundancy, 2),
                  FormatDouble(stats.tail_redundancy, 2)});
  }
  table.Print("Table E1: volume, variety and redundancy vs corpus scale");
  return 0;
}
