// E14 — Online (pay-as-you-go) data fusion: probing sources in estimated
// accuracy order with early termination answers most items after a
// fraction of the probes a batch resolver needs, with nearly its
// precision. The confidence bar trades probes against quality.
// With `--json`, writes BENCH_online_fusion.json with the per-bar resolve
// cost and the probe/precision trade-off at each confidence bar.
#include <map>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/fusion/evaluation.h"
#include "bdi/fusion/online.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::fusion;

int main(int argc, char** argv) {
  bench::BenchMain bench_main("online_fusion", argc, argv);
  bench::JsonReporter& json = bench_main.json();
  bench::Banner("E14", "online fusion: probes vs precision",
                "precision approaches the batch resolver as the confidence "
                "bar rises, while the probe fraction stays well below 1; "
                "conflicted items consume most of the probes");

  synth::WorldConfig config = bench::CopierWorldConfig(400, 20, 0);
  config.source_accuracy_min = 0.55;
  config.source_accuracy_max = 0.95;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());

  FusionResult batch = AccuFusion().Resolve(db);
  FusionQuality batch_quality = EvaluateFusion(db, batch, world.truth);
  std::printf("batch accu reference: precision %.4f with %zu claims\n\n",
              batch_quality.precision, db.num_claims());

  TextTable table({"confidence bar", "probe fraction", "precision",
                   "precision vs batch"});
  for (double bar : {0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    OnlineFusionConfig online_config;
    online_config.confidence_stop = bar;
    WallTimer resolve_timer;
    OnlineFusionResult online =
        ResolveOnline(db, batch.source_accuracy, online_config).value();
    double resolve_seconds = resolve_timer.ElapsedSeconds();
    json.Add("resolve.bar" + FormatDouble(bar, 2), resolve_seconds, 1,
             static_cast<double>(db.items().size()) /
                 std::max(1e-9, resolve_seconds));
    FusionResult as_result;
    as_result.chosen = online.chosen;
    as_result.confidence = online.confidence;
    as_result.source_accuracy = batch.source_accuracy;
    FusionQuality quality = EvaluateFusion(db, as_result, world.truth);
    table.AddRow({FormatDouble(bar, 2),
                  FormatDouble(online.probe_fraction(), 3),
                  FormatDouble(quality.precision, 4),
                  FormatDouble(quality.precision - batch_quality.precision,
                               4)});
  }
  table.Print("Figure E14: probes vs precision across confidence bars");
  json.Note("batch_precision", FormatDouble(batch_quality.precision, 4));

  // Probe distribution at the default bar: most items settle fast.
  OnlineFusionResult online =
      ResolveOnline(db, batch.source_accuracy).value();
  std::map<size_t, size_t> histogram;
  for (size_t p : online.probes) ++histogram[p];
  TextTable dist({"probes for the item", "items"});
  for (const auto& [probes, count] : histogram) {
    dist.AddRow({std::to_string(probes), std::to_string(count)});
  }
  dist.Print("Table E14b: probe histogram (bar 0.95)");
  return 0;
}
