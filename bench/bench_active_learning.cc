// E15 — Humans in the loop: labels-vs-quality curves for active
// (uncertainty-sampled) vs random labeling of candidate pairs. The active
// learner reaches a given linkage F1 with a fraction of the labels.
#include <map>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/linkage/active.h"
#include "bdi/linkage/linkage.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::linkage;

int main() {
  bench::Banner("E15", "active vs random labeling for the learned matcher",
                "the active curve dominates: for the same label budget, "
                "uncertainty sampling yields equal or better F1, and "
                "reaches the rule-based matcher's quality with few labels");

  synth::WorldConfig config;
  config.seed = 2016;
  config.num_entities = 250;
  config.num_sources = 10;
  config.identifier_presence_prob = 0.7;  // make learning non-trivial
  synth::SyntheticWorld world = synth::GenerateWorld(config);

  LinkerConfig linker_config;
  Linker linker(&world.dataset, linker_config);
  LinkageResult rule_result = linker.Run();
  LinkageQuality rule_quality = EvaluateClusters(
      rule_result.clusters.label_of_record, world.truth.entity_of_record);
  const std::vector<CandidatePair>& candidates = linker.last_candidates();
  std::printf("candidate pool: %zu pairs; rule-matcher reference F1 %.3f\n\n",
              candidates.size(), rule_quality.f1);

  LabelOracle oracle = [&](const CandidatePair& pair) {
    return world.truth.entity_of_record[pair.a] ==
                   world.truth.entity_of_record[pair.b]
               ? 1
               : 0;
  };

  auto f1_of = [&](const LearnedScorer& scorer) {
    std::vector<ScoredPair> matches;
    text::SimilarityScratch scratch;
    for (const CandidatePair& pair : candidates) {
      PairFeatures features =
          linker.extractor().Extract(pair.a, pair.b, scratch);
      if (scorer.Matches(features)) {
        matches.push_back(ScoredPair{pair, scorer.Score(features)});
      }
    }
    // Center clustering: conn-components would amplify one lenient
    // round's extra edges into giant clusters and make the learning curve
    // unreadable.
    EntityClusters clusters =
        ClusterRecords(world.dataset.num_records(), matches,
                       ClusteringMethod::kCenter);
    return EvaluateClusters(clusters.label_of_record,
                            world.truth.entity_of_record)
        .f1;
  };

  TextTable table({"labels", "active F1", "random F1"});
  for (size_t rounds : {0u, 1u, 2u, 4u, 8u, 12u}) {
    ActiveLearningConfig al_config;
    al_config.seed_labels = 20;
    al_config.batch_size = 10;
    al_config.rounds = rounds;
    ActiveLearningResult active =
        TrainActively(linker.extractor(), candidates, oracle, al_config);
    ActiveLearningResult random =
        TrainRandomly(linker.extractor(), candidates, oracle, al_config);
    table.AddRow({std::to_string(active.labels_used),
                  FormatDouble(f1_of(active.scorer), 3),
                  FormatDouble(f1_of(random.scorer), 3)});
  }
  table.Print("Figure E15: linkage F1 vs number of oracle labels");
  return 0;
}
