// E12 — End-to-end pipeline: per-stage quality and runtime for the
// composed schema-alignment -> linkage -> fusion pipeline across product
// categories, plus an ablation against fusion with perfect upstream
// stages (the price of automated alignment/linkage).
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/core/integrator.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/evaluation.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::core;

int main() {
  bench::Banner("E12", "end-to-end integration pipeline by category",
                "automated upstream stages cost a few points of fusion "
                "precision vs perfect extraction/linkage; all stages run "
                "in seconds at this scale");

  TextTable table({"category", "schema P", "schema R", "link P", "link R",
                   "fusion precision", "perfect-upstream", "total s"});
  for (const char* category : {"camera", "headphone", "tv", "book"}) {
    synth::WorldConfig config;
    config.seed = 2013;
    config.category = category;
    config.num_entities = 300;
    config.num_sources = 12;
    config.num_copiers = 3;
    config.source_accuracy_min = 0.75;
    config.source_accuracy_max = 0.95;
    synth::SyntheticWorld world = synth::GenerateWorld(config);

    Integrator integrator;
    IntegrationReport report = integrator.Run(world.dataset);

    schema::SchemaQuality schema_quality = schema::EvaluateSchema(
        report.schema, world.truth.canonical_of_source_attr);
    linkage::LinkageQuality linkage_quality = linkage::EvaluateClusters(
        report.linkage.clusters.label_of_record,
        world.truth.entity_of_record);
    fusion::PipelineMappings mappings = fusion::MapPipelineToTruth(
        report.linkage.clusters, report.schema, world.truth);
    fusion::FusionQuality fusion_quality = fusion::EvaluateFusionMapped(
        report.claims, report.fusion, mappings, world.truth);

    // Ablation: fusion over ground-truth extraction/linkage/alignment.
    fusion::ClaimDb perfect_db = fusion::ClaimDb::FromGroundTruth(
        world.truth, world.dataset.num_sources());
    fusion::FusionResult perfect_result =
        fusion::AccuCopyFusion().Resolve(perfect_db);
    fusion::FusionQuality perfect_quality =
        fusion::EvaluateFusion(perfect_db, perfect_result, world.truth);

    double total = report.schema_seconds + report.linkage_seconds +
                   report.fusion_seconds;
    table.AddRow({category, FormatDouble(schema_quality.precision, 3),
                  FormatDouble(schema_quality.recall, 3),
                  FormatDouble(linkage_quality.precision, 3),
                  FormatDouble(linkage_quality.recall, 3),
                  FormatDouble(fusion_quality.precision, 3),
                  FormatDouble(perfect_quality.precision, 3),
                  FormatDouble(total, 2)});
  }
  table.Print("Table E12: end-to-end pipeline quality by category");
  return 0;
}
