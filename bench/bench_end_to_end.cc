// E12 — End-to-end pipeline: per-stage quality and runtime for the
// composed schema-alignment -> linkage -> fusion pipeline across product
// categories, plus an ablation against fusion with perfect upstream
// stages (the price of automated alignment/linkage), plus a
// serial-vs-parallel run of the whole pipeline with a fused-value
// equivalence check.
#include "bdi/common/executor.h"
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/core/integrator.h"
#include "bdi/fusion/accu_copy.h"
#include "bdi/fusion/evaluation.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::core;

namespace {

/// One IntegratorConfig with every stage pinned to `num_threads` (1 =
/// fully serial pipeline, 0 = shared executor pool).
IntegratorConfig PipelineConfig(size_t num_threads) {
  IntegratorConfig config;
  config.linker.num_threads = num_threads;
  config.accu.num_threads = num_threads;
  config.accu_copy.accu.num_threads = num_threads;
  config.accu_copy.copy.num_threads = num_threads;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMain bench_main("end_to_end", argc, argv);
  size_t threads = bench_main.threads();
  Executor::Configure(threads);
  bench::JsonReporter& json = bench_main.json();
  // Metrics ride along in BENCH_end_to_end.json; instrumentation is
  // bitwise-neutral, so the equivalence check below is unaffected.
  if (json.enabled()) metrics::SetEnabled(true);
  bench::Banner("E12", "end-to-end integration pipeline by category",
                "automated upstream stages cost a few points of fusion "
                "precision vs perfect extraction/linkage; all stages run "
                "in seconds at this scale");

  TextTable table({"category", "schema P", "schema R", "link P", "link R",
                   "fusion precision", "perfect-upstream", "total s"});
  for (const char* category : {"camera", "headphone", "tv", "book"}) {
    synth::WorldConfig config;
    config.seed = 2013;
    config.category = category;
    config.num_entities = 300;
    config.num_sources = 12;
    config.num_copiers = 3;
    config.source_accuracy_min = 0.75;
    config.source_accuracy_max = 0.95;
    synth::SyntheticWorld world = synth::GenerateWorld(config);

    Integrator integrator;
    IntegrationReport report = integrator.Run(world.dataset);

    schema::SchemaQuality schema_quality = schema::EvaluateSchema(
        report.schema, world.truth.canonical_of_source_attr);
    linkage::LinkageQuality linkage_quality = linkage::EvaluateClusters(
        report.linkage.clusters.label_of_record,
        world.truth.entity_of_record);
    fusion::PipelineMappings mappings = fusion::MapPipelineToTruth(
        report.linkage.clusters, report.schema, world.truth);
    fusion::FusionQuality fusion_quality = fusion::EvaluateFusionMapped(
        report.claims, report.fusion, mappings, world.truth);

    // Ablation: fusion over ground-truth extraction/linkage/alignment.
    fusion::ClaimDb perfect_db = fusion::ClaimDb::FromGroundTruth(
        world.truth, world.dataset.num_sources());
    fusion::FusionResult perfect_result =
        fusion::AccuCopyFusion().Resolve(perfect_db);
    fusion::FusionQuality perfect_quality =
        fusion::EvaluateFusion(perfect_db, perfect_result, world.truth);

    double total = report.schema_seconds + report.linkage_seconds +
                   report.fusion_seconds;
    table.AddRow({category, FormatDouble(schema_quality.precision, 3),
                  FormatDouble(schema_quality.recall, 3),
                  FormatDouble(linkage_quality.precision, 3),
                  FormatDouble(linkage_quality.recall, 3),
                  FormatDouble(fusion_quality.precision, 3),
                  FormatDouble(perfect_quality.precision, 3),
                  FormatDouble(total, 2)});
  }
  table.Print("Table E12: end-to-end pipeline quality by category");

  // E12b — the same pipeline at a larger scale, once fully serial
  // (num_threads = 1 in every stage) and once on the shared executor at
  // --threads, with a fused-output equivalence check: the parallel
  // pipeline must choose the same value for every item.
  synth::WorldConfig big;
  big.seed = 2013;
  big.category = "book";
  big.num_entities = 900;
  big.num_sources = 16;
  big.num_copiers = 4;
  big.source_accuracy_min = 0.75;
  big.source_accuracy_max = 0.95;
  synth::SyntheticWorld big_world = synth::GenerateWorld(big);
  std::printf("\nscaling corpus: %zu records, %zu sources\n",
              big_world.dataset.num_records(),
              big_world.dataset.num_sources());

  TextTable scaling({"path", "threads", "schema s", "linkage s", "fusion s",
                     "total s", "speedup"});
  IntegrationReport serial_report, parallel_report;
  double serial_total = 0.0;
  for (bool parallel : {false, true}) {
    size_t t = parallel ? threads : 1;
    Integrator integrator(PipelineConfig(t));
    WallTimer timer;
    IntegrationReport report = integrator.Run(big_world.dataset);
    double total = timer.ElapsedSeconds();
    if (!parallel) serial_total = total;
    scaling.AddRow({parallel ? "parallel" : "serial", std::to_string(t),
                    FormatDouble(report.schema_seconds, 3),
                    FormatDouble(report.linkage_seconds, 3),
                    FormatDouble(report.fusion_seconds, 3),
                    FormatDouble(total, 3),
                    FormatDouble(serial_total / total, 2)});
    std::string prefix = parallel ? "pipeline_parallel" : "pipeline_serial";
    size_t items = report.claims.items().size();
    json.Add(prefix, total, t, items / total);
    json.Add(prefix + "_linkage", report.linkage_seconds, t,
             big_world.dataset.num_records() / report.linkage_seconds);
    json.Add(prefix + "_fusion", report.fusion_seconds, t,
             items / report.fusion_seconds);
    (parallel ? parallel_report : serial_report) = std::move(report);
  }
  scaling.Print("Table E12b: pipeline serial vs parallel (" +
                std::to_string(threads) + " threads)");

  bool identical =
      serial_report.fusion.chosen == parallel_report.fusion.chosen &&
      serial_report.linkage.clusters.label_of_record ==
          parallel_report.linkage.clusters.label_of_record;
  std::printf("equivalence: parallel pipeline output identical to serial: "
              "%s\n",
              identical ? "yes" : "NO");
  json.Note("identical_output", identical ? "true" : "false");
  json.Note("threads", std::to_string(threads));
  bench::AttachMetricsSnapshot(json);
  return identical ? 0 : 1;
}
