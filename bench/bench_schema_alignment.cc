// E5 — Schema alignment under increasing heterogeneity: deterministic
// single mediated schema (connected-components vs center clustering)
// against the probabilistic mediated schema's consensus (pay-as-you-go).
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/core/integrator.h"
#include "bdi/schema/linkage_refinement.h"
#include "bdi/schema/mediated_schema.h"
#include "bdi/schema/probabilistic_schema.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::schema;

int main() {
  bench::Banner("E5",
                "mediated-schema quality vs schema heterogeneity",
                "center clustering dominates connected components on "
                "precision; the probabilistic consensus recovers recall "
                "under high synonym/decoration noise without giving up "
                "much precision");

  TextTable table({"synonyms", "decoration", "variant", "precision",
                   "recall", "f1", "#clusters"});
  for (double synonym_prob : {0.2, 0.5, 0.8}) {
    for (double decoration_prob : {0.1, 0.4}) {
      synth::WorldConfig config;
      config.seed = 2013;
      config.category = "camera";
      config.num_entities = 250;
      config.num_sources = 12;
      config.synonym_prob = synonym_prob;
      config.decoration_prob = decoration_prob;
      synth::SyntheticWorld world = synth::GenerateWorld(config);
      AttributeStatistics stats =
          AttributeStatistics::Compute(world.dataset);
      std::vector<AttrEdge> edges = BuildCandidateEdges(stats, {});

      auto add_row = [&](const char* variant, const MediatedSchema& schema) {
        SchemaQuality quality =
            EvaluateSchema(schema, world.truth.canonical_of_source_attr);
        table.AddRow({FormatDouble(synonym_prob, 1),
                      FormatDouble(decoration_prob, 1), variant,
                      FormatDouble(quality.precision, 3),
                      FormatDouble(quality.recall, 3),
                      FormatDouble(quality.f1, 3),
                      std::to_string(schema.clusters.size())});
      };

      MediatedSchemaConfig cc;
      cc.method = ClusterMethod::kConnectedComponents;
      add_row("conn-comp", BuildMediatedSchema(stats, edges, cc));

      MediatedSchemaConfig center;
      center.method = ClusterMethod::kCenter;
      add_row("center", BuildMediatedSchema(stats, edges, center));

      ProbabilisticMediatedSchema pms =
          ProbabilisticMediatedSchema::Build(stats, edges, {});
      add_row("probabilistic", pms.Consensus(stats, 0.5));

      // The feedback loop: run linkage on the center schema, then merge
      // clusters that agree on linked entities (the tutorial's
      // "alternating alignment and linkage" direction).
      core::IntegratorConfig pipeline_config;
      pipeline_config.linkage_feedback = true;
      core::IntegrationReport report =
          core::Integrator(pipeline_config).Run(world.dataset);
      add_row("center+feedback", report.schema);
    }
  }
  table.Print(
      "Table E5: alignment quality by heterogeneity level and method");

  // Precision/recall curve over the clustering threshold (center method,
  // mid heterogeneity) — the knob a deployment actually turns.
  synth::WorldConfig config;
  config.seed = 2013;
  config.category = "camera";
  config.num_entities = 250;
  config.num_sources = 12;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  AttributeStatistics stats = AttributeStatistics::Compute(world.dataset);
  std::vector<AttrEdge> edges = BuildCandidateEdges(stats, {});
  TextTable curve({"threshold", "precision", "recall", "f1"});
  for (double threshold : {0.5, 0.6, 0.65, 0.7, 0.75, 0.8, 0.9}) {
    MediatedSchemaConfig msc;
    msc.threshold = threshold;
    msc.method = ClusterMethod::kCenter;
    SchemaQuality quality = EvaluateSchema(
        BuildMediatedSchema(stats, edges, msc),
        world.truth.canonical_of_source_attr);
    curve.AddRow({FormatDouble(threshold, 2),
                  FormatDouble(quality.precision, 3),
                  FormatDouble(quality.recall, 3),
                  FormatDouble(quality.f1, 3)});
  }
  curve.Print("Table E5b: precision/recall across clustering thresholds");
  return 0;
}
