// E19 — Incremental end-to-end integration (the velocity future-work item
// implemented): refreshing the integrated view per arriving batch vs
// re-running the whole pipeline, at matching quality. With `--json`,
// writes BENCH_incremental_integration.json with the per-batch refresh
// and from-scratch costs.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/core/incremental_integrator.h"
#include "bdi/fusion/evaluation.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::core;

int main(int argc, char** argv) {
  bench::BenchMain bench_main("incremental_integration", argc, argv);
  bench::JsonReporter& json = bench_main.json();
  bench::Banner("E19", "incremental vs batch end-to-end integration",
                "per-batch refresh cost stays well below the growing "
                "from-scratch cost; fusion precision matches batch within "
                "noise");

  synth::WorldConfig config;
  config.seed = 2017;
  config.num_entities = 500;
  config.num_sources = 14;
  synth::SyntheticWorld full = synth::GenerateWorld(config);

  Dataset live;
  for (const SourceInfo& source : full.dataset.sources()) {
    live.AddSource(source.name);
  }
  std::vector<EntityId> truth;
  size_t cursor = 0;
  auto feed = [&](size_t count) {
    for (size_t i = 0; i < count && cursor < full.dataset.num_records();
         ++i, ++cursor) {
      const Record& record =
          full.dataset.record(static_cast<RecordIdx>(cursor));
      std::vector<std::pair<std::string, std::string>> fields;
      for (const Field& field : record.fields) {
        fields.emplace_back(full.dataset.attr_name(field.attr), field.value);
      }
      live.AddRecord(record.source, fields);
      truth.push_back(full.truth.entity_of_record[cursor]);
    }
  };

  // Attribute/source ids in `live` are re-interned; translate the ground
  // truth onto them before any id-keyed evaluation.
  size_t total = full.dataset.num_records();
  feed(total);
  GroundTruth live_truth = RemapGroundTruth(full.truth, full.dataset, live);
  // Rewind: rebuild the stream for the actual run.
  Dataset empty;
  for (const SourceInfo& source : full.dataset.sources()) {
    empty.AddSource(source.name);
  }
  live = std::move(empty);
  truth.clear();
  cursor = 0;
  feed(total / 2);
  IncrementalIntegrator incremental(&live);
  WallTimer timer;
  incremental.Refresh();
  double bootstrap_seconds = timer.ElapsedSeconds();
  json.Add("bootstrap", bootstrap_seconds, 1,
           static_cast<double>(live.num_records()) /
               std::max(1e-9, bootstrap_seconds));
  std::printf("bootstrap: %zu records in %.1f ms\n\n", live.num_records(),
              bootstrap_seconds * 1000.0);

  auto precision = [&](const IntegrationReport& report) {
    fusion::PipelineMappings mappings = fusion::MapPipelineToTruth(
        report.linkage.clusters, report.schema, live_truth);
    return fusion::EvaluateFusionMapped(report.claims, report.fusion,
                                        mappings, live_truth)
        .precision;
  };

  TextTable table({"batch", "records", "refresh ms", "batch ms", "speedup",
                   "incr precision", "batch precision"});
  for (int batch = 1; batch <= 5; ++batch) {
    feed(total / 10);
    timer.Reset();
    incremental.Refresh();
    double refresh_ms = timer.ElapsedMillis();

    timer.Reset();
    IntegrationReport scratch = Integrator().Run(live);
    double batch_ms = timer.ElapsedMillis();

    double records_now = static_cast<double>(live.num_records());
    json.Add("refresh.batch" + std::to_string(batch), refresh_ms / 1000.0,
             1, records_now / std::max(1e-9, refresh_ms / 1000.0));
    json.Add("scratch.batch" + std::to_string(batch), batch_ms / 1000.0, 1,
             records_now / std::max(1e-9, batch_ms / 1000.0));
    table.AddRow({std::to_string(batch), std::to_string(live.num_records()),
                  FormatDouble(refresh_ms, 1), FormatDouble(batch_ms, 1),
                  FormatDouble(batch_ms / std::max(0.1, refresh_ms), 1) +
                      "x",
                  FormatDouble(precision(incremental.report()), 3),
                  FormatDouble(precision(scratch), 3)});
  }
  table.Print("Figure E19: per-batch integration refresh vs re-run");
  return 0;
}
