#ifndef BDI_BENCH_BENCH_UTIL_H_
#define BDI_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bdi/common/metrics.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/synth/world.h"

namespace bdi::bench {

/// Prints the standard experiment banner so bench output is self-labeling.
inline void Banner(const std::string& experiment, const std::string& title,
                   const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n\n");
}

/// The common fusion-bench world: independent sources with spread
/// accuracies plus low-accuracy copiers.
inline synth::WorldConfig CopierWorldConfig(int num_entities = 400,
                                            int num_sources = 20,
                                            int num_copiers = 8) {
  synth::WorldConfig config;
  config.seed = 2013;
  config.category = "book";
  config.num_entities = num_entities;
  config.num_sources = num_sources;
  config.num_copiers = num_copiers;
  config.copy_rate = 0.9;
  config.copier_accuracy_min = 0.4;
  config.copier_accuracy_max = 0.6;
  config.source_accuracy_min = 0.7;
  config.source_accuracy_max = 0.95;
  // The classic propagation scenario: the big head source is mediocre and
  // every copier mirrors it, so its errors arrive many times over.
  config.source0_accuracy = 0.55;
  config.copier_original = 0;
  config.format_variation_prob = 0.0;  // isolate fusion from extraction
  return config;
}

/// Perf-trajectory reporter for the bench harness. Benches record named
/// measurements (wall seconds, thread count, items/sec); when the binary
/// was invoked with `--json`, the destructor writes them to
/// `BENCH_<name>.json` in the working directory so successive PRs can diff
/// performance. Metric names must not need JSON escaping (keep them to
/// [A-Za-z0-9_.:-]).
class JsonReporter {
 public:
  JsonReporter(std::string name, int argc, char** argv)
      : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") enabled_ = true;
    }
  }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() { Write(); }

  bool enabled() const { return enabled_; }

  void Add(const std::string& metric, double wall_seconds, size_t threads,
           double items_per_sec) {
    entries_.push_back(Entry{metric, wall_seconds, threads, items_per_sec});
  }

  /// Extra top-level facts (e.g. "identical_chosen": true); `value` is
  /// spliced in verbatim, so pass valid JSON.
  void Note(const std::string& key, const std::string& value) {
    notes_.push_back({key, value});
  }

  void Write() {
    if (!enabled_ || written_) return;
    written_ = true;
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\"", name_.c_str());
    for (const auto& [key, value] : notes_) {
      std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), value.c_str());
    }
    std::fprintf(f, ",\n  \"metrics\": [\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
                   "\"threads\": %zu, \"items_per_sec\": %.1f}%s\n",
                   e.metric.c_str(), e.wall_seconds, e.threads,
                   e.items_per_sec, i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct Entry {
    std::string metric;
    double wall_seconds = 0.0;
    size_t threads = 1;
    double items_per_sec = 0.0;
  };

  std::string name_;
  bool enabled_ = false;
  bool written_ = false;
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

/// Attaches the current metrics registry snapshot to the reporter under the
/// "pipeline_metrics" key, so BENCH_*.json carries the pipeline counters
/// and per-stage spans alongside the bench's own wall-time entries. No-op
/// (attaches an empty snapshot) when metrics were never enabled.
inline void AttachMetricsSnapshot(JsonReporter& reporter) {
  if (!reporter.enabled()) return;
  reporter.Note("pipeline_metrics", metrics::Registry::Get().ToJson());
}

/// Value of `--threads N` (default `fallback`); the parallel-scaling knob
/// shared by the bench binaries.
inline size_t ThreadsFlag(int argc, char** argv, size_t fallback = 8) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      long v = std::strtol(argv[i + 1], nullptr, 10);
      if (v > 0) return static_cast<size_t>(v);
    }
  }
  return fallback;
}

/// The shared bench main scaffold: parses the common flags (`--json`,
/// `--threads N`) once and owns the JsonReporter, so bench mains stop
/// hand-rolling the same two lines of plumbing. Construct it first thing
/// in main; the report (if `--json` was passed) is written when it goes
/// out of scope.
class BenchMain {
 public:
  BenchMain(std::string name, int argc, char** argv,
            size_t default_threads = 8)
      : threads_(ThreadsFlag(argc, argv, default_threads)),
        json_(std::move(name), argc, argv) {}

  BenchMain(const BenchMain&) = delete;
  BenchMain& operator=(const BenchMain&) = delete;

  /// The resolved `--threads` value.
  size_t threads() const { return threads_; }
  /// The bench's JSON reporter (no-op unless `--json` was passed).
  JsonReporter& json() { return json_; }
  /// True when `--json` was passed.
  bool json_enabled() const { return json_.enabled(); }

 private:
  size_t threads_;
  JsonReporter json_;
};

}  // namespace bdi::bench

#endif  // BDI_BENCH_BENCH_UTIL_H_
