#ifndef BDI_BENCH_BENCH_UTIL_H_
#define BDI_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/synth/world.h"

namespace bdi::bench {

/// Prints the standard experiment banner so bench output is self-labeling.
inline void Banner(const std::string& experiment, const std::string& title,
                   const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n\n");
}

/// The common fusion-bench world: independent sources with spread
/// accuracies plus low-accuracy copiers.
inline synth::WorldConfig CopierWorldConfig(int num_entities = 400,
                                            int num_sources = 20,
                                            int num_copiers = 8) {
  synth::WorldConfig config;
  config.seed = 2013;
  config.category = "book";
  config.num_entities = num_entities;
  config.num_sources = num_sources;
  config.num_copiers = num_copiers;
  config.copy_rate = 0.9;
  config.copier_accuracy_min = 0.4;
  config.copier_accuracy_max = 0.6;
  config.source_accuracy_min = 0.7;
  config.source_accuracy_max = 0.95;
  // The classic propagation scenario: the big head source is mediocre and
  // every copier mirrors it, so its errors arrive many times over.
  config.source0_accuracy = 0.55;
  config.copier_original = 0;
  config.format_variation_prob = 0.0;  // isolate fusion from extraction
  return config;
}

}  // namespace bdi::bench

#endif  // BDI_BENCH_BENCH_UTIL_H_
