// E7 — Record-linkage quality by matcher x clusterer under increasing
// noise (identifier sparsity + name corruption). Identifier-anchored rules
// are robust while ids exist; learned/linear matchers degrade gracefully.
// Also measures the progressive scheduler's anytime behavior: the
// recall-vs-comparisons curve at budgets {10%, 25%, 50%, 100%}. With
// `--json`, writes BENCH_linkage_quality.json carrying the curve and
// whether the anytime target (>= 90% of full-budget recall at <= 50% of
// the comparisons) held.
#include <string>

#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/linkage/linkage.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::linkage;

namespace {

synth::SyntheticWorld NoisyWorld(double noise) {
  synth::WorldConfig config;
  config.seed = 2018;
  config.category = "camera";
  config.num_entities = 400;
  config.num_sources = 12;
  config.identifier_presence_prob = 1.0 - 0.6 * noise;
  config.identifier_noise_prob = 0.10 * noise;
  config.name_noise.typo_prob = 0.05 + 0.25 * noise;
  config.name_noise.token_drop_prob = 0.05 + 0.15 * noise;
  config.name_noise.extra_token_prob = 0.15 + 0.30 * noise;
  return synth::GenerateWorld(config);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMain bench_main("linkage_quality", argc, argv);
  bench::JsonReporter& json = bench_main.json();
  bench::Banner("E7", "linkage quality by matcher and clusterer vs noise",
                "quality declines with noise for all variants; the "
                "identifier-anchored rule holds precision longest; center "
                "clustering trades recall for precision vs transitive "
                "closure");

  TextTable table({"noise", "scorer", "clusterer", "precision", "recall",
                   "f1", "matches"});
  for (double noise : {0.0, 0.5, 1.0}) {
    synth::SyntheticWorld world = NoisyWorld(noise);
    for (ScorerKind scorer : {ScorerKind::kRule, ScorerKind::kLinear}) {
      for (ClusteringMethod clusterer :
           {ClusteringMethod::kConnectedComponents,
            ClusteringMethod::kCenter,
            ClusteringMethod::kCorrelationPivot}) {
        LinkerConfig config;
        config.scorer = scorer;
        config.clustering = clusterer;
        Linker linker(&world.dataset, config);
        LinkageResult result = linker.Run();
        LinkageQuality quality =
            EvaluateClusters(result.clusters.label_of_record,
                             world.truth.entity_of_record);
        const char* scorer_name =
            scorer == ScorerKind::kRule ? "rule" : "linear";
        const char* cluster_name =
            clusterer == ClusteringMethod::kConnectedComponents ? "conn-comp"
            : clusterer == ClusteringMethod::kCenter             ? "center"
                                                                 : "corr-pivot";
        table.AddRow({FormatDouble(noise, 1), scorer_name, cluster_name,
                      FormatDouble(quality.precision, 3),
                      FormatDouble(quality.recall, 3),
                      FormatDouble(quality.f1, 3),
                      std::to_string(result.num_matches)});
      }
    }
  }
  table.Print("Table E7: linkage P/R/F1 by configuration and noise level");

  // E7b — anytime recall: the progressive scheduler under shrinking
  // comparison budgets on the mid-noise world. The bound ranking plus
  // closure pruning should keep most of the recall at half the
  // comparisons; a budget of 100% must land exactly on the unbudgeted
  // numbers.
  synth::SyntheticWorld world = NoisyWorld(0.5);
  TextTable anytime({"budget", "comparisons", "deferred", "recall", "f1",
                     "frac of full recall"});
  struct CurvePoint {
    std::string budget;
    size_t comparisons = 0;
    double recall = 0.0;
  };
  std::vector<CurvePoint> curve;
  auto run_budget = [&](double budget) {
    LinkerConfig config;
    config.use_progressive = true;
    config.comparison_budget = budget;
    Linker linker(&world.dataset, config);
    LinkageResult result = linker.Run();
    LinkageQuality quality =
        EvaluateClusters(result.clusters.label_of_record,
                         world.truth.entity_of_record);
    return std::make_pair(result, quality);
  };
  // The 100% run first: it anchors the "fraction of full recall" column.
  auto [full_result, full_quality] = run_budget(0.0);
  double full_recall = full_quality.recall;
  for (double budget : {0.10, 0.25, 0.50}) {
    auto [result, quality] = run_budget(budget);
    std::string label = FormatDouble(100.0 * budget, 0) + "%";
    curve.push_back({label, result.num_scheduled, quality.recall});
    anytime.AddRow({label, std::to_string(result.num_scheduled),
                    std::to_string(result.num_deferred),
                    FormatDouble(quality.recall, 3),
                    FormatDouble(quality.f1, 3),
                    FormatDouble(quality.recall / std::max(1e-9, full_recall),
                                 3)});
  }
  curve.push_back({"100%", full_result.num_scheduled, full_recall});
  anytime.AddRow({"100%", std::to_string(full_result.num_scheduled),
                  std::to_string(full_result.num_deferred),
                  FormatDouble(full_recall, 3),
                  FormatDouble(full_quality.f1, 3), "1.000"});
  anytime.Print("Table E7b: progressive anytime recall vs comparison budget");

  bool non_decreasing = true;
  for (size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].comparisons < curve[i - 1].comparisons ||
        curve[i].recall + 1e-12 < curve[i - 1].recall) {
      non_decreasing = false;
    }
  }
  double recall_at_half = curve[2].recall;  // the 50% point
  bool target_met = recall_at_half >= 0.9 * full_recall;
  std::printf("recall at 50%% budget: %.3f (%.1f%% of full %.3f) — target "
              "(>= 90%%) %s; curve non-decreasing: %s\n",
              recall_at_half, 100.0 * recall_at_half /
                                  std::max(1e-9, full_recall),
              full_recall, target_met ? "met" : "MISSED",
              non_decreasing ? "yes" : "NO");

  std::string curve_json = "[";
  for (size_t i = 0; i < curve.size(); ++i) {
    if (i > 0) curve_json += ", ";
    curve_json += "{\"budget\": \"" + curve[i].budget +
                  "\", \"comparisons\": " +
                  std::to_string(curve[i].comparisons) +
                  ", \"recall\": " + FormatDouble(curve[i].recall, 4) + "}";
  }
  curve_json += "]";
  json.Note("recall_curve", curve_json);
  json.Note("anytime_target_met", target_met ? "true" : "false");
  json.Note("recall_curve_non_decreasing", non_decreasing ? "true" : "false");
  return 0;
}
