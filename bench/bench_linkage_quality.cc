// E7 — Record-linkage quality by matcher x clusterer under increasing
// noise (identifier sparsity + name corruption). Identifier-anchored rules
// are robust while ids exist; learned/linear matchers degrade gracefully.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/linkage/linkage.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::linkage;

namespace {

synth::SyntheticWorld NoisyWorld(double noise) {
  synth::WorldConfig config;
  config.seed = 2018;
  config.category = "camera";
  config.num_entities = 400;
  config.num_sources = 12;
  config.identifier_presence_prob = 1.0 - 0.6 * noise;
  config.identifier_noise_prob = 0.10 * noise;
  config.name_noise.typo_prob = 0.05 + 0.25 * noise;
  config.name_noise.token_drop_prob = 0.05 + 0.15 * noise;
  config.name_noise.extra_token_prob = 0.15 + 0.30 * noise;
  return synth::GenerateWorld(config);
}

}  // namespace

int main() {
  bench::Banner("E7", "linkage quality by matcher and clusterer vs noise",
                "quality declines with noise for all variants; the "
                "identifier-anchored rule holds precision longest; center "
                "clustering trades recall for precision vs transitive "
                "closure");

  TextTable table({"noise", "scorer", "clusterer", "precision", "recall",
                   "f1", "matches"});
  for (double noise : {0.0, 0.5, 1.0}) {
    synth::SyntheticWorld world = NoisyWorld(noise);
    for (ScorerKind scorer : {ScorerKind::kRule, ScorerKind::kLinear}) {
      for (ClusteringMethod clusterer :
           {ClusteringMethod::kConnectedComponents,
            ClusteringMethod::kCenter,
            ClusteringMethod::kCorrelationPivot}) {
        LinkerConfig config;
        config.scorer = scorer;
        config.clustering = clusterer;
        Linker linker(&world.dataset, config);
        LinkageResult result = linker.Run();
        LinkageQuality quality =
            EvaluateClusters(result.clusters.label_of_record,
                             world.truth.entity_of_record);
        const char* scorer_name =
            scorer == ScorerKind::kRule ? "rule" : "linear";
        const char* cluster_name =
            clusterer == ClusteringMethod::kConnectedComponents ? "conn-comp"
            : clusterer == ClusteringMethod::kCenter             ? "center"
                                                                 : "corr-pivot";
        table.AddRow({FormatDouble(noise, 1), scorer_name, cluster_name,
                      FormatDouble(quality.precision, 3),
                      FormatDouble(quality.recall, 3),
                      FormatDouble(quality.f1, 3),
                      std::to_string(result.num_matches)});
      }
    }
  }
  table.Print("Table E7: linkage P/R/F1 by configuration and noise level");
  return 0;
}
