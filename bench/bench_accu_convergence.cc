// E3 — Source-accuracy estimation convergence: Accu's estimated source
// accuracies approach the generator's configured accuracies within a few
// iterations, and fused precision stabilizes with them.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/fusion/accu.h"
#include "bdi/fusion/evaluation.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::fusion;

int main() {
  bench::Banner("E3", "accuracy-estimation convergence over iterations",
                "estimation error (MAE vs true accuracies) drops steeply in "
                "the first 2-3 iterations, then flattens; precision "
                "improves in lockstep");

  synth::WorldConfig config = bench::CopierWorldConfig(400, 20, 0);
  config.source_accuracy_min = 0.55;
  config.source_accuracy_max = 0.95;
  synth::SyntheticWorld world = synth::GenerateWorld(config);
  ClaimDb db =
      ClaimDb::FromGroundTruth(world.truth, world.dataset.num_sources());

  TextTable table({"iterations", "accuracy MAE", "fused precision"});
  for (int iterations : {1, 2, 3, 4, 5, 7, 10, 15, 20}) {
    AccuConfig accu;
    accu.max_iterations = iterations;
    accu.epsilon = 0.0;  // run exactly `iterations` rounds
    FusionResult result = AccuFusion(accu).Resolve(db);
    FusionQuality quality = EvaluateFusion(db, result, world.truth);
    table.AddRow({std::to_string(iterations),
                  FormatDouble(AccuracyEstimationError(result, world.truth),
                               4),
                  FormatDouble(quality.precision, 4)});
  }
  table.Print("Figure E3: Accu iterations vs estimation error / precision");

  // Also report the baseline error of assuming every source is average.
  double mean = 0.0;
  for (double a : world.truth.source_accuracy) mean += a;
  mean /= static_cast<double>(world.truth.source_accuracy.size());
  double baseline = 0.0;
  for (double a : world.truth.source_accuracy) baseline += std::abs(a - mean);
  baseline /= static_cast<double>(world.truth.source_accuracy.size());
  std::printf("baseline MAE (constant mean-accuracy guess): %s\n",
              FormatDouble(baseline, 4).c_str());
  return 0;
}
