// E11 — Velocity: the corpus evolves (pages/sources die and appear, values
// drift, sources refresh with lag). Integrating once and keeping the
// result stale decays steadily; re-integrating each snapshot holds quality.
// With `--json`, writes BENCH_velocity.json with the per-month fresh
// re-integration cost and the final stale/fresh precision gap.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/common/timer.h"
#include "bdi/core/integrator.h"
#include "bdi/fusion/evaluation.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::core;

int main(int argc, char** argv) {
  bench::BenchMain bench_main("velocity", argc, argv);
  bench::JsonReporter& json = bench_main.json();
  bench::Banner("E11", "integration quality over an evolving corpus",
                "stale fusion precision decays monotonically with drift; "
                "fresh re-integration stays level; source/page survival "
                "shrinks snapshot over snapshot");

  synth::WorldConfig config;
  config.seed = 2015;
  config.num_entities = 300;
  config.num_sources = 12;
  synth::WorldSimulator simulator(config);

  synth::SyntheticWorld snapshot0 = simulator.Snapshot();
  size_t pages0 = snapshot0.dataset.num_records();
  size_t sources0 = snapshot0.dataset.num_sources();
  Integrator integrator;
  IntegrationReport report0 = integrator.Run(snapshot0.dataset);
  fusion::PipelineMappings mappings0 = fusion::MapPipelineToTruth(
      report0.linkage.clusters, report0.schema, snapshot0.truth);

  synth::TemporalConfig temporal;
  temporal.value_change_rate = 0.12;
  temporal.record_death_rate = 0.06;
  temporal.record_birth_rate = 0.05;
  temporal.source_death_rate = 0.04;
  temporal.entity_birth_rate = 0.02;
  temporal.refresh_prob = 0.5;

  TextTable table({"month", "sources alive", "pages", "stale precision",
                   "fresh precision"});
  double stale_precision_last = 0.0;
  double fresh_precision_last = 0.0;
  for (int month = 0; month <= 8; ++month) {
    synth::SyntheticWorld now = simulator.Snapshot();
    fusion::FusionQuality stale = fusion::EvaluateFusionMapped(
        report0.claims, report0.fusion, mappings0, now.truth);
    WallTimer fresh_timer;
    IntegrationReport fresh_report = integrator.Run(now.dataset);
    double fresh_seconds = fresh_timer.ElapsedSeconds();
    json.Add("fresh_integrate.month" + std::to_string(month), fresh_seconds,
             1,
             static_cast<double>(now.dataset.num_records()) /
                 std::max(1e-9, fresh_seconds));
    fusion::PipelineMappings fresh_mappings = fusion::MapPipelineToTruth(
        fresh_report.linkage.clusters, fresh_report.schema, now.truth);
    fusion::FusionQuality fresh = fusion::EvaluateFusionMapped(
        fresh_report.claims, fresh_report.fusion, fresh_mappings, now.truth);
    stale_precision_last = stale.precision;
    fresh_precision_last = fresh.precision;
    table.AddRow({std::to_string(month),
                  std::to_string(now.dataset.num_sources()) + "/" +
                      std::to_string(sources0),
                  std::to_string(now.dataset.num_records()),
                  FormatDouble(stale.precision, 3),
                  FormatDouble(fresh.precision, 3)});
    simulator.Step(temporal);
  }
  table.Print("Figure E11: stale vs refreshed integration over time");
  std::printf(
      "note: snapshot-0 had %zu pages; churn both retires and adds pages.\n",
      pages0);
  json.Note("final_stale_precision", FormatDouble(stale_precision_last, 4));
  json.Note("final_fresh_precision", FormatDouble(fresh_precision_last, 4));
  return 0;
}
