// E16 — Data extraction from rendered pages: wrapper induction recovers
// the specification fields from template-based sites (local homogeneity),
// weak-template sites cost recall, and end-to-end integration from raw
// pages is nearly as good as integration from the clean dataset.
#include "bdi/common/string_util.h"
#include "bdi/common/table.h"
#include "bdi/core/integrator.h"
#include "bdi/extract/extractor.h"
#include "bdi/extract/renderer.h"
#include "bdi/fusion/evaluation.h"
#include "bench_util.h"

using namespace bdi;
using namespace bdi::extract;

int main() {
  bench::Banner("E16", "wrapper-induction extraction from spec pages",
                "field precision stays near 1 (what the wrapper extracts "
                "is right); recall drops with the weak-template share; "
                "page-level integration tracks dataset-level integration");

  synth::WorldConfig world_config;
  world_config.seed = 2013;
  world_config.category = "camera";
  world_config.num_entities = 250;
  world_config.num_sources = 12;
  synth::SyntheticWorld world = synth::GenerateWorld(world_config);

  TextTable table({"weak-template share", "usable sites",
                   "field precision", "field recall", "field f1"});
  for (double weak : {0.0, 0.2, 0.4, 0.6}) {
    RendererConfig renderer_config;
    renderer_config.weak_template_prob = weak;
    PageRenderer renderer(renderer_config);
    std::vector<SourcePages> sites = renderer.RenderAll(world.dataset);
    ExtractionReport report = ExtractAll(sites);
    size_t usable = 0;
    for (const SourceDiagnostics& d : report.sources) {
      if (d.usable) ++usable;
    }
    ExtractionQuality quality =
        EvaluateExtraction(world.dataset, sites, report);
    table.AddRow({FormatDouble(weak, 1),
                  std::to_string(usable) + "/" +
                      std::to_string(report.sources.size()),
                  FormatDouble(quality.field_precision, 3),
                  FormatDouble(quality.field_recall, 3),
                  FormatDouble(quality.f1, 3)});
  }
  table.Print("Figure E16: extraction quality vs weak-template share");

  // End-to-end from pages: render -> extract -> integrate, compared with
  // integrating the clean dataset directly.
  PageRenderer renderer(RendererConfig{});
  std::vector<SourcePages> sites = renderer.RenderAll(world.dataset);
  ExtractionReport extraction = ExtractAll(sites);

  core::Integrator integrator;
  core::IntegrationReport from_pages = integrator.Run(extraction.dataset);
  core::IntegrationReport from_dataset = integrator.Run(world.dataset);

  // Page-level records appear in the same global order as the original
  // records (source-major), so the truth labels line up.
  linkage::LinkageQuality pages_linkage = linkage::EvaluateClusters(
      from_pages.linkage.clusters.label_of_record,
      world.truth.entity_of_record);
  linkage::LinkageQuality dataset_linkage = linkage::EvaluateClusters(
      from_dataset.linkage.clusters.label_of_record,
      world.truth.entity_of_record);

  TextTable pipeline({"pipeline input", "link P", "link R", "#claims"});
  pipeline.AddRow({"rendered pages (extracted)",
                   FormatDouble(pages_linkage.precision, 3),
                   FormatDouble(pages_linkage.recall, 3),
                   std::to_string(from_pages.claims.num_claims())});
  pipeline.AddRow({"clean dataset",
                   FormatDouble(dataset_linkage.precision, 3),
                   FormatDouble(dataset_linkage.recall, 3),
                   std::to_string(from_dataset.claims.num_claims())});
  pipeline.Print("Table E16b: integration from pages vs from the dataset");
  return 0;
}
